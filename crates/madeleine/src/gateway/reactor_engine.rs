//! The reactor engine core: the gateway's forwarding logic as poll-driven
//! state machines on a fixed worker pool (paper §2.2.2 rethought for
//! scale).
//!
//! The threaded engine burns `nets × (1 + (nets−1))` OS threads per
//! gateway per virtual channel. This module runs the *same* forwarding
//! logic — the [`ItemSink`]-generic `relay_packet` demultiplexer, the
//! credit protocol, batch coalescing, cancellation — as a pair of tasks
//! per inbound network (a [`RecvTask`] and a [`FlushTask`] sharing the
//! outbound queues), scheduled by a per-gateway-node [`GatewayReactor`]
//! whose worker count is fixed no matter how many virtual channels,
//! networks, or streams the node hosts.
//!
//! ## Why a receive/flush task *pair*
//!
//! The threaded engine overlaps the polling thread's receive cost with
//! the forwarding thread's transmit cost — that overlap is where its
//! single-stream pipeline bandwidth comes from. A single task would
//! serialize the two on whichever worker polls it. Splitting them along
//! the same seam as the threaded engine (the bounded pipeline queue,
//! here a mutex-guarded per-net `VecDeque`) lets two workers drive
//! receive and transmit concurrently, so bulk bandwidth matches the
//! threaded engine while the thread count stays flat.
//!
//! ## Why one reactor per gateway *node*
//!
//! A session creates every conduit of a node against that node's single
//! arrival event, and the node's [`CreditLedger`] shares it: any packet
//! arrival, credit deposit, or cancellation bumps exactly that event. The
//! reactor parks its workers on it ([`RtPark`]), so "anything happened on
//! this node" is precisely "stir the reactor" — no per-source waker
//! plumbing, and under the simulated runtime the park maps onto the
//! virtual-clock signal, keeping reactor-mode sessions deterministic.
//! The task pair uses the same event to hand off: enqueueing an item or
//! freeing queue space bumps it, which stirs the peer task.
//!
//! ## Blocking calls become poll state
//!
//! * the polling thread's blocking `select_ready_after` becomes a
//!   non-blocking `try_select_ready_after` scan, re-armed by stirs;
//! * the forwarding thread's bounded queue becomes a per-outbound-net
//!   `VecDeque` whose length gates intake at `pipeline_depth` (same
//!   backpressure, no parked thread), flushed with the same train
//!   coalescing as `forwarding_thread`;
//! * blocking credit takes become `try_take` plus a reactor timer at the
//!   credit deadline (on expiry the stream is cancelled exactly as the
//!   threaded engine's `take_blocking` timeout would);
//! * the teardown drain deadline becomes a timer armed when a stop is
//!   requested or the inbound side disconnects.
//!
//! Packets of one stream only ever traverse one receive task and one net
//! queue in FIFO order, so per-stream byte sequences are identical to the
//! threaded engine's — the `prop_engine` property test asserts it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use mad_trace::{trace_instant, trace_span};
use mad_util::reactor::{Context, Park, Poll, PollTask, Reactor};
use mad_util::sync::{Condvar, Mutex};

use super::{
    EngineLive, FwdItem, FwdShared, GatewayConfig, GatewayHandles, GatewayStats, GatewayStop,
    InStream, ItemSink, Landing, OutPath, ThreadExitGuard,
};
use crate::channel::Channel;
use crate::conduit::{BufferMode, DriverCaps};
use crate::credit::{CreditLedger, TakeOutcome};
use crate::error::{MadError, Result};
use crate::gtm::{self, CancelReason, StreamKey, PRELUDE_LEN};
use crate::routing::RouteTable;
use crate::runtime::{RtEvent, Runtime};
use crate::types::{NetworkId, NodeId};

/// [`Park`] over a node's arrival event and its runtime's clock: the glue
/// that lets one `mad_util` reactor block correctly under both the real
/// and the simulated runtime. `prepare`/`park` map 1:1 onto the event's
/// epoch protocol, and `now_ns` onto [`Runtime::now_nanos`], so reactor
/// timers live in virtual time when the clock does.
struct RtPark {
    ev: Arc<dyn RtEvent>,
    rt: Arc<dyn Runtime>,
}

impl Park for RtPark {
    fn now_ns(&self) -> u64 {
        self.rt.now_nanos()
    }

    fn prepare(&self) -> u64 {
        self.ev.epoch()
    }

    fn park(&self, token: u64) {
        self.ev.wait_past(token);
    }

    fn park_timeout(&self, token: u64, timeout_ns: u64) {
        let _ = self.ev.wait_past_timeout(token, timeout_ns);
    }

    fn unpark(&self) {
        self.ev.bump();
    }
}

/// Completion latch for one engine's reactor tasks, decremented as each
/// task is dropped (finished, panicked, or drained at shutdown).
///
/// Plain `std`-style sync on purpose: the session's main thread — which
/// is *not* a virtual-clock actor and therefore must never wait on an
/// [`RtEvent`] — joins gateways through this, mirroring how it joins
/// threaded engines with `JoinHandle::join`.
pub(super) struct TaskLatch {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl TaskLatch {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(TaskLatch {
            remaining: Mutex::new(n),
            cv: Condvar::new(),
        })
    }

    /// Block until every task of the engine has been dropped.
    pub(super) fn wait(&self) {
        let mut left = self.remaining.lock();
        while *left > 0 {
            self.cv.wait(&mut left);
        }
    }

    fn done(&self) {
        let mut left = self.remaining.lock();
        *left = left.saturating_sub(1);
        if *left == 0 {
            self.cv.notify_all();
        }
    }
}

/// Decrements the latch on drop — panics and drains count as completion,
/// so a joiner can never hang on a task that no longer exists.
struct LatchGuard(Arc<TaskLatch>);

impl Drop for LatchGuard {
    fn drop(&mut self) {
        self.0.done();
    }
}

/// The shared reactor of one gateway node: a `mad_util` reactor parked on
/// the node's arrival event plus the fixed worker pool driving it. One
/// instance serves every reactor-mode virtual channel of the node; the
/// session builds it, hands it to `spawn_gateway`, and shuts it down after
/// all engines have drained.
pub struct GatewayReactor {
    core: Arc<Reactor>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl GatewayReactor {
    /// Build the reactor of gateway node `rank` and spawn `workers`
    /// worker threads (at least one) through the runtime — so they are
    /// virtual-clock actors under simulation and counted in the session
    /// thread budget.
    pub fn new(
        rank: NodeId,
        runtime: &Arc<dyn Runtime>,
        event: Arc<dyn RtEvent>,
        workers: usize,
    ) -> Arc<Self> {
        let core = Reactor::new(Arc::new(RtPark {
            ev: event,
            rt: runtime.clone(),
        }));
        let handles = (0..workers.max(1))
            .map(|i| {
                let core = core.clone();
                runtime.spawn(
                    format!("gw{}-reactor-w{}", rank.0, i),
                    Box::new(move || core.run_worker()),
                )
            })
            .collect();
        Arc::new(GatewayReactor {
            core,
            workers: Mutex::new(handles),
        })
    }

    /// Worker threads driving this reactor.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }

    /// Tasks ever spawned on this reactor (a receive/flush pair per
    /// inbound network, across all virtual channels of the node).
    pub fn tasks_spawned(&self) -> u64 {
        self.core.spawned_total()
    }

    /// Spawn an auxiliary task (e.g. a health watchdog) on the node's
    /// worker pool.
    pub(crate) fn spawn_task(&self, task: Box<dyn mad_util::reactor::PollTask>) {
        self.core.spawn(task);
    }

    /// Route every task-poll duration on this reactor into `hist` (the
    /// node's `reactor_poll_ns` histogram). First caller wins; later
    /// calls are no-ops.
    pub fn set_poll_histogram(&self, hist: Arc<mad_util::hist::AtomicHistogram>) {
        self.core.set_poll_histogram(hist);
    }

    /// Stop the workers, join them, drop any remaining task (running its
    /// RAII guards), and resurface the first task panic. The session
    /// calls this after every engine's latch has been joined, so in a
    /// healthy run there is nothing left to drain.
    pub fn shutdown_and_join(&self) {
        self.core.shutdown();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for h in handles {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
        self.core.drain_tasks();
        if let Some(p) = self.core.take_panic() {
            std::panic::resume_unwind(p);
        }
    }
}

/// One outbound network's queue: the reactor analog of the threaded
/// engine's bounded pipeline. Per-net queues (rather than one) keep a
/// credit-blocked stream toward one network from head-of-line-blocking
/// traffic toward another, matching the isolation threaded per-pair
/// pipelines provide. Per-stream FIFO holds because a stream pins to one
/// outbound net for its whole life.
struct NetQueue {
    q: VecDeque<FwdItem>,
    /// When the head item first found its credit window empty — the start
    /// of the current credit-blocked episode, whose deadline becomes a
    /// reactor timer.
    blocked_since: Option<u64>,
}

/// The queues one inbound direction feeds, shared between its receive
/// task (producer) and flush task (consumer) — the reactor's version of
/// the bounded channel between the threaded polling and forwarding
/// threads. Guarded by a plain mutex: both sides only hold it for queue
/// surgery, never across a conduit send or receive.
struct Queues {
    nets: BTreeMap<NetworkId, NetQueue>,
}

/// The reactor engine's [`ItemSink`]: relayed packets land in the
/// outbound net's queue and the flush task transmits them with
/// non-blocking credit takes and train coalescing. Enqueueing bumps the
/// node event so a drained flush task wakes up.
struct ReactorSinks {
    nets: BTreeSet<NetworkId>,
    queues: Arc<Mutex<Queues>>,
    wake: Arc<dyn RtEvent>,
}

impl ItemSink for ReactorSinks {
    fn bridges(&self, net: NetworkId) -> bool {
        self.nets.contains(&net)
    }

    fn accept(
        &mut self,
        stream: &InStream,
        item: FwdItem,
        is_frag: bool,
        shared: &FwdShared,
    ) -> Result<()> {
        {
            let mut g = self.queues.lock();
            let Some(nq) = g.nets.get_mut(&stream.out_net) else {
                // `bridges` is checked before a stream is accepted, so this
                // is unreachable in practice; account the item and poison
                // only it.
                super::drop_item(&item, shared);
                return Err(MadError::Protocol(format!(
                    "no reactor queue for network {}",
                    stream.out_net
                )));
            };
            if is_frag {
                // Every reactor item crosses a queue boundary — the analog
                // of the threaded pipeline handoff.
                shared.stats.on_switch(stream.pair);
            }
            if let Some(m) = &shared.metrics {
                m.queue_depth.add(1);
            }
            nq.q.push_back(item);
        }
        self.wake.bump();
        Ok(())
    }
}

/// Packets received per poll before yielding the worker to other tasks —
/// the reactor's fairness quantum (a busy inbound net cannot monopolize a
/// worker the way it *should* monopolize its dedicated thread).
const RECV_BUDGET: usize = 32;

/// Trains transmitted per flush poll before yielding, for the same
/// fairness reason on the output side.
const TRAIN_BUDGET: usize = 16;

/// The receive half of one inbound network: the threaded engine's polling
/// thread (select + receive + demux) as a non-blocking task. Items it
/// relays land in the [`Queues`] its [`FlushTask`] partner drains; a full
/// queue parks intake at `pipeline_depth`, exactly like the threaded
/// engine's bounded pipeline send.
struct RecvTask {
    rank: NodeId,
    in_channel: Arc<Channel>,
    routes: Arc<RouteTable>,
    cfg: GatewayConfig,
    shared: FwdShared,
    stopctl: Arc<GatewayStop>,
    sinks: ReactorSinks,
    streams: BTreeMap<StreamKey, InStream>,
    cancelled: BTreeSet<StreamKey>,
    open_from: BTreeMap<NodeId, u64>,
    cursor: Option<NodeId>,
    pinned: Option<NodeId>,
    landing: Landing,
    in_caps: DriverCaps,
    max_pkt: usize,
    /// Whether a relay copy may be deferred to the flush task — true only
    /// when the raw receive is copy-free (dynamic inbound driver). The
    /// reactor always has a real flush stage, so no depth check here.
    can_defer: bool,
    /// Whether stage-busy brackets pay for clock reads (metrics or trace
    /// active); the `flush_active` occupancy count is kept either way.
    timed: bool,
    /// Armed when a stop is requested; expiry abandons streams that will
    /// never end.
    drain_deadline: Option<u64>,
    /// Set (on drop) once this side stops producing, so the flush task
    /// knows the queue tail is final.
    inbound_done: Arc<AtomicBool>,
    /// Set by the flush task when an outbound conduit died: nothing this
    /// side receives can be forwarded anymore, so it finishes.
    output_dead: Arc<AtomicBool>,
    _latch: LatchGuard,
    _exit: ThreadExitGuard,
}

impl RecvTask {
    fn queues_full(&self) -> bool {
        self.sinks
            .queues
            .lock()
            .nets
            .values()
            .any(|n| n.q.len() >= self.cfg.pipeline_depth)
    }
}

impl Drop for RecvTask {
    fn drop(&mut self) {
        // Finished, panicked, or drained: either way the producer is gone.
        // Publish that and stir the reactor so the flush task moves to its
        // endgame. `_exit` and `_latch` drop after this body.
        self.inbound_done.store(true, Ordering::Release);
        self.sinks.wake.bump();
    }
}

impl PollTask for RecvTask {
    fn poll(&mut self, cx: &mut Context) -> Poll {
        let mut received = 0usize;
        loop {
            let now = cx.now_ns();
            if self.output_dead.load(Ordering::Acquire) {
                // The flush side lost its conduit and drains the queues;
                // receiving more would only feed a dead path.
                return Poll::Ready;
            }
            if self.stopctl.stop_requested() {
                let deadline = *self
                    .drain_deadline
                    .get_or_insert(now.saturating_add(self.cfg.drain_timeout_ns));
                if now >= deadline {
                    // Streams that will never end (their source died
                    // silently): abandon instead of hanging the session.
                    return Poll::Ready;
                }
                cx.wake_at(deadline);
            }
            if self.queues_full() {
                // Backpressure: the threaded polling thread would park on
                // the bounded pipeline send here. The flush task bumps the
                // node event whenever it frees space.
                return Poll::Pending;
            }
            let sel = match self.pinned {
                Some(p) => match self.in_channel.conduit_ready(p) {
                    Ok(true) => Some(p),
                    Ok(false) => None,
                    Err(_) => return Poll::Ready,
                },
                None => match self.in_channel.try_select_ready_after(self.cursor) {
                    Ok(s) => s,
                    Err(_) => return Poll::Ready,
                },
            };
            let Some(peer) = sel else {
                // Intake stalled: sleep until the node's arrival event
                // stirs us.
                if self.stopctl.should_stop() {
                    return Poll::Ready;
                }
                return Poll::Pending;
            };
            self.cursor = Some(peer);
            let _busy = super::BusyGuard::enter(&self.stopctl);
            let _stage = super::StageBusy::enter(
                None,
                &self.shared.stats.recv_busy_ns,
                &*self.shared.runtime,
                self.timed,
            );
            let (buf, restage) = {
                let _recv = trace_span!(self.shared.tracer, "gw", "recv", "peer" = peer.0 as u64);
                match super::receive_packet(
                    &self.in_channel,
                    peer,
                    self.landing,
                    self.max_pkt,
                    self.shared.runtime.pool(),
                    self.can_defer,
                    &self.shared.stats,
                ) {
                    Ok(b) => b,
                    Err(MadError::Disconnected) => return Poll::Ready,
                    Err(e) => {
                        // Same degradation as the threaded engine: the
                        // conduit's framing is lost, cancel this peer's
                        // streams and keep serving the others.
                        self.shared.stats.on_error();
                        trace_instant!(
                            self.shared.tracer,
                            "gw",
                            "recv-error",
                            "peer" = peer.0 as u64
                        );
                        let _ = e;
                        super::cancel_peer_streams(
                            peer,
                            &self.in_channel,
                            &mut self.sinks,
                            &mut self.streams,
                            &mut self.cancelled,
                            &mut self.open_from,
                            &self.shared,
                        );
                        self.max_pkt =
                            super::landing_size(&self.streams, self.cfg.max_batch, &self.in_caps);
                        self.pinned = None;
                        continue;
                    }
                }
            };
            self.in_channel.stats().on_recv(peer.0, buf.bytes().len());
            if restage.is_none() && !matches!(self.landing, Landing::Owned) {
                if let Some(m) = &self.shared.metrics {
                    m.copy_bytes.record(buf.bytes().len() as u64);
                }
            }
            let relayed = {
                let _relay = trace_span!(self.shared.tracer, "gw", "relay", "peer" = peer.0 as u64);
                super::relay_packet(
                    self.rank,
                    peer,
                    buf,
                    restage,
                    &self.in_channel,
                    &mut self.sinks,
                    &self.routes,
                    self.cfg,
                    &self.shared,
                    &mut self.streams,
                    &mut self.cancelled,
                    &mut self.open_from,
                    &mut self.max_pkt,
                )
            };
            match relayed {
                Ok(()) => {}
                Err(MadError::Disconnected) => return Poll::Ready,
                Err(_) => {
                    self.shared.stats.on_error();
                    trace_instant!(
                        self.shared.tracer,
                        "gw",
                        "relay-error",
                        "peer" = peer.0 as u64
                    );
                }
            }
            if self.cfg.exclusive_streams {
                self.pinned = match self.open_from.get(&peer) {
                    Some(&n) if n > 0 => Some(peer),
                    _ => None,
                };
            }
            received += 1;
            if received >= RECV_BUDGET {
                cx.yield_now();
                return Poll::Pending;
            }
        }
    }
}

/// One step the flush task resolved under the queue lock, executed (any
/// conduit I/O) after the lock is released.
enum FlushStep {
    /// A coalesced train ready to transmit, plus any ledger-cancelled
    /// items popped while building it.
    Train {
        batch: Vec<FwdItem>,
        cancels: Vec<(FwdItem, CancelReason)>,
    },
    /// The head item's stream is dead (ledger cancel or credit timeout).
    Cancel(FwdItem, CancelReason),
    /// Nothing sendable: queue empty, or head credit-blocked with the
    /// deadline timer armed.
    Idle,
}

/// The transmit half of one inbound network: the threaded engine's
/// forwarding threads (credit + train coalescing + transmit) as a
/// non-blocking task. It pops decisions under the queue lock but performs
/// every conduit send outside it, so its partner keeps receiving while it
/// transmits — that concurrency is what keeps reactor bulk bandwidth at
/// parity with the threaded engine.
struct FlushTask {
    cfg: GatewayConfig,
    shared: FwdShared,
    stopctl: Arc<GatewayStop>,
    queues: Arc<Mutex<Queues>>,
    paths: BTreeMap<NetworkId, OutPath>,
    wake: Arc<dyn RtEvent>,
    inbound_done: Arc<AtomicBool>,
    output_dead: Arc<AtomicBool>,
    /// Whether stage-busy brackets pay for clock reads; `flush_active` is
    /// maintained either way so the receive task can place copies.
    timed: bool,
    drain_deadline: Option<u64>,
    _latch: LatchGuard,
    _exit: ThreadExitGuard,
}

impl FlushTask {
    /// Resolve the next action for `net`'s queue under the lock: cancel a
    /// dead head, arm the credit timer for a blocked one, or pop a train
    /// (coalescing exactly like `forwarding_thread`).
    fn next_step(&mut self, net: NetworkId, cx: &mut Context) -> FlushStep {
        let now = cx.now_ns();
        let shared = &self.shared;
        let cfg = self.cfg;
        let Some(path) = self.paths.get(&net) else {
            return FlushStep::Idle;
        };
        let mut g = self.queues.lock();
        let Some(nq) = g.nets.get_mut(&net) else {
            return FlushStep::Idle;
        };
        let NetQueue { q, blocked_since } = nq;
        let Some(head) = q.front() else {
            *blocked_since = None;
            return FlushStep::Idle;
        };
        if head.consume {
            match shared.ledger.try_take(head.tag.key()) {
                TakeOutcome::Taken => {
                    // Credit in hand: record how long the head's blocked
                    // episode lasted (0 when the take was instant), the
                    // reactor analog of the blocking-wait measurement.
                    if let Some(m) = &shared.metrics {
                        m.credit_wait_ns
                            .record(now.saturating_sub(blocked_since.unwrap_or(now)));
                    }
                }
                TakeOutcome::Cancelled(r) => {
                    *blocked_since = None;
                    return match q.pop_front() {
                        Some(item) => {
                            if let Some(m) = &shared.metrics {
                                m.queue_depth.add(-1);
                            }
                            FlushStep::Cancel(item, r)
                        }
                        None => FlushStep::Idle,
                    };
                }
                TakeOutcome::Empty => {
                    let since = match *blocked_since {
                        Some(s) => s,
                        None => {
                            shared.stats.on_stall((head.tag.src, head.tag.dest));
                            trace_instant!(
                                shared.tracer,
                                "gw",
                                "stall",
                                "src" = head.tag.src.0 as u64,
                                "dest" = head.tag.dest.0 as u64,
                            );
                            *blocked_since = Some(now);
                            now
                        }
                    };
                    let deadline = since.saturating_add(shared.credit_timeout_ns);
                    if now >= deadline {
                        // The blocking credit take would have timed out by
                        // now: same degradation, same order.
                        shared.stats.credit_timeouts.fetch_add(1, Ordering::Relaxed);
                        *blocked_since = None;
                        return match q.pop_front() {
                            Some(item) => {
                                if let Some(m) = &shared.metrics {
                                    m.queue_depth.add(-1);
                                }
                                FlushStep::Cancel(item, CancelReason::CreditTimeout)
                            }
                            None => FlushStep::Idle,
                        };
                    }
                    cx.wake_at(deadline);
                    return FlushStep::Idle; // blocked head holds this net's FIFO
                }
            }
        }
        *blocked_since = None;
        let Some(head) = q.pop_front() else {
            return FlushStep::Idle;
        };
        if let Some(m) = &shared.metrics {
            m.queue_depth.add(-1);
        }
        let caps = path.channel(head.last_hop).caps();
        let budget = caps.preferred_mtu.min(caps.max_packet);
        let mut frame = PRELUDE_LEN + gtm::BATCH_ENTRY_OVERHEAD + head.buf.bytes().len();
        let mut batch = vec![head];
        let mut cancels = Vec::new();
        // Re-read per train so a controller retune governs the next
        // coalescing decision.
        let max_batch = shared
            .tuning
            .as_ref()
            .map(|t| t.max_batch())
            .unwrap_or(cfg.max_batch);
        while max_batch > 1
            && batch.len() < max_batch
            && frame <= budget
            && 2 * (batch.len() + 1) < caps.max_gather
        {
            let Some(next) = q.front() else { break };
            if next.to != batch[0].to || next.last_hop != batch[0].last_hop {
                break; // different conduit: next train's head
            }
            let need = gtm::BATCH_ENTRY_OVERHEAD + next.buf.bytes().len();
            if frame + need > budget {
                break;
            }
            if next.consume {
                match shared.ledger.try_take(next.tag.key()) {
                    TakeOutcome::Taken => {}
                    // Credit-dry: don't reorder behind it — it stays the
                    // queue head for the next flush.
                    TakeOutcome::Empty => break,
                    TakeOutcome::Cancelled(r) => {
                        if let Some(item) = q.pop_front() {
                            if let Some(m) = &shared.metrics {
                                m.queue_depth.add(-1);
                            }
                            cancels.push((item, r)); // dead stream drops out of the train
                        }
                        continue;
                    }
                }
            }
            frame += need;
            let Some(next) = q.pop_front() else { break };
            if let Some(m) = &shared.metrics {
                m.queue_depth.add(-1);
            }
            batch.push(next);
        }
        FlushStep::Train { batch, cancels }
    }

    fn cancel_and_drop(&self, net: NetworkId, item: FwdItem, reason: CancelReason) {
        if let Some(path) = self.paths.get(&net) {
            super::cancel_outbound(
                path,
                item.to,
                item.last_hop,
                &item.tag,
                &item.grant,
                reason,
                true,
                &self.shared,
            );
        }
        super::drop_item(&item, &self.shared);
    }

    /// Transmit until every queue is empty or credit-blocked (or the
    /// fairness budget runs out). Returns whether anything was popped.
    /// An outbound conduit failure sets `output_dead`; the caller drains.
    fn flush_pass(&mut self, cx: &mut Context, sent: &mut usize) -> bool {
        let nets: Vec<NetworkId> = self.paths.keys().copied().collect();
        let mut progress = false;
        for net in nets {
            loop {
                if *sent >= TRAIN_BUDGET || self.output_dead.load(Ordering::Acquire) {
                    return progress;
                }
                match self.next_step(net, cx) {
                    FlushStep::Idle => break,
                    FlushStep::Cancel(item, r) => {
                        self.cancel_and_drop(net, item, r);
                        progress = true;
                    }
                    FlushStep::Train { batch, cancels } => {
                        for (item, r) in cancels {
                            self.cancel_and_drop(net, item, r);
                        }
                        let Some(path) = self.paths.get(&net) else {
                            break;
                        };
                        if !super::transmit_batch(path, batch, &self.shared) {
                            self.output_dead.store(true, Ordering::Release);
                            return true;
                        }
                        *sent += 1;
                        progress = true;
                    }
                }
            }
        }
        progress
    }

    /// Drop every still-queued item with full accounting (held-bytes
    /// gauge, ledger close). Idempotent; also run on task drop so a
    /// drained or panicked task cannot leak stream accounting.
    fn drain_all(&self) {
        let mut g = self.queues.lock();
        for nq in g.nets.values_mut() {
            while let Some(item) = nq.q.pop_front() {
                if let Some(m) = &self.shared.metrics {
                    m.queue_depth.add(-1);
                }
                super::drop_item(&item, &self.shared);
            }
            nq.blocked_since = None;
        }
    }

    fn queued(&self) -> usize {
        self.queues.lock().nets.values().map(|n| n.q.len()).sum()
    }
}

impl Drop for FlushTask {
    fn drop(&mut self) {
        // The consumer is gone: kill the path so the receive task stops
        // producing, and account anything still queued.
        self.output_dead.store(true, Ordering::Release);
        self.drain_all();
        self.wake.bump();
        // `_exit` (ThreadExitGuard) and `_latch` drop after this body:
        // last-task-out releases leaked streams, then the joiner wakes.
    }
}

impl PollTask for FlushTask {
    fn poll(&mut self, cx: &mut Context) -> Poll {
        if self.output_dead.load(Ordering::Acquire) {
            // Sink mode after a conduit death: swallow whatever the
            // receive task pushed before it noticed, until it is done.
            self.drain_all();
            if self.inbound_done.load(Ordering::Acquire) {
                return Poll::Ready;
            }
            return Poll::Pending;
        }
        let mut sent = 0usize;
        let progress = {
            // The flush stage is busy for the whole pass — the receive
            // task's copy-placement scheduler reads `flush_active`.
            let stats = self.shared.stats.clone();
            let runtime = self.shared.runtime.clone();
            let _stage = super::StageBusy::enter(
                Some(&stats.flush_active),
                &stats.flush_busy_ns,
                &*runtime,
                self.timed,
            );
            self.flush_pass(cx, &mut sent)
        };
        if progress {
            // Freed queue space: stir the reactor so a backpressured
            // receive task resumes intake.
            self.wake.bump();
        }
        if self.output_dead.load(Ordering::Acquire) {
            self.drain_all();
            if self.inbound_done.load(Ordering::Acquire) {
                return Poll::Ready;
            }
            return Poll::Pending;
        }
        if sent >= TRAIN_BUDGET {
            cx.yield_now();
            return Poll::Pending;
        }
        if self.queued() == 0 {
            if self.inbound_done.load(Ordering::Acquire) {
                return Poll::Ready;
            }
            // Empty and the producer lives: sleep until an accept bumps
            // the node event.
            return Poll::Pending;
        }
        // Non-empty: every head is credit-blocked (its timer is armed).
        // Once the producer is done or a stop is in flight, the tail drain
        // is bounded like the threaded engine's.
        let now = cx.now_ns();
        if self.inbound_done.load(Ordering::Acquire) || self.stopctl.stop_requested() {
            let deadline = *self
                .drain_deadline
                .get_or_insert(now.saturating_add(self.cfg.drain_timeout_ns));
            if now >= deadline {
                self.drain_all();
                return Poll::Ready;
            }
            cx.wake_at(deadline);
        }
        Poll::Pending
    }
}

/// Reactor-mode counterpart of the threaded `spawn_gateway` body: a
/// [`RecvTask`]/[`FlushTask`] pair per inbound network, spawned on the
/// node's shared reactor instead of dedicated threads. Joining the
/// returned handles waits on the tasks' completion latch.
#[allow(clippy::too_many_arguments)] // one-caller bootstrap, same shape as spawn_gateway
pub(super) fn spawn_reactor_gateway(
    rank: NodeId,
    _vc_name: &str,
    regular: BTreeMap<NetworkId, Arc<Channel>>,
    special: BTreeMap<NetworkId, Arc<Channel>>,
    routes: RouteTable,
    cfg: GatewayConfig,
    runtime: Arc<dyn Runtime>,
    stopctl: Arc<GatewayStop>,
    ledger: Arc<CreditLedger>,
    reactor: &Arc<GatewayReactor>,
    metrics: Option<super::GwMetrics>,
    member: Option<Arc<crate::membership::MembershipPlane>>,
    tuning: Option<Arc<crate::control::Tuning>>,
) -> GatewayHandles {
    let nets: Vec<NetworkId> = special.keys().copied().collect();
    let routes = Arc::new(routes);
    let stats = Arc::new(GatewayStats::default());
    // threads_spawned stays 0: the engine borrows the node's shared
    // worker pool instead of spawning its own threads — the whole point.
    let live = Arc::new(EngineLive {
        threads: AtomicUsize::new(nets.len() * 2),
        local_open: AtomicI64::new(0),
        stopctl: stopctl.clone(),
    });
    let latch = TaskLatch::new(nets.len() * 2);
    for &net_in in &nets {
        let mut net_queues: BTreeMap<NetworkId, NetQueue> = BTreeMap::new();
        let mut paths: BTreeMap<NetworkId, OutPath> = BTreeMap::new();
        for &net_out in &nets {
            if net_out == net_in {
                continue;
            }
            net_queues.insert(
                net_out,
                NetQueue {
                    q: VecDeque::new(),
                    blocked_since: None,
                },
            );
            paths.insert(
                net_out,
                OutPath {
                    regular: regular[&net_out].clone(),
                    special: special[&net_out].clone(),
                },
            );
        }
        let in_channel = special[&net_in].clone();
        stopctl.register_waker(in_channel.recv_event().clone());
        stopctl.register_source(Arc::downgrade(&in_channel));
        let wake: Arc<dyn RtEvent> = in_channel.recv_event().clone();
        let queues = Arc::new(Mutex::new(Queues { nets: net_queues }));
        let inbound_done = Arc::new(AtomicBool::new(false));
        let output_dead = Arc::new(AtomicBool::new(false));
        let shared = FwdShared {
            stats: stats.clone(),
            live: live.clone(),
            ledger: ledger.clone(),
            runtime: runtime.clone(),
            credit_timeout_ns: cfg.credit_timeout_ns,
            tracer: runtime.tracer(),
            metrics: metrics.clone(),
            member: member.clone(),
            tuning: tuning.clone(),
        };
        let landing = super::landing_policy(paths.values(), cfg);
        let in_caps = in_channel.caps();
        let can_defer = in_caps.mode == BufferMode::Dynamic;
        let timed = shared.metrics.is_some() || shared.tracer.enabled();
        let streams = BTreeMap::new();
        let max_pkt = super::landing_size(&streams, cfg.max_batch, &in_caps);
        let flush = FlushTask {
            cfg,
            shared: shared.clone(),
            stopctl: stopctl.clone(),
            queues: queues.clone(),
            paths,
            wake: wake.clone(),
            inbound_done: inbound_done.clone(),
            output_dead: output_dead.clone(),
            timed,
            drain_deadline: None,
            _latch: LatchGuard(latch.clone()),
            _exit: ThreadExitGuard { live: live.clone() },
        };
        let recv = RecvTask {
            rank,
            in_channel,
            routes: routes.clone(),
            cfg,
            shared,
            stopctl: stopctl.clone(),
            sinks: ReactorSinks {
                nets: paths_keys(&flush.paths),
                queues,
                wake,
            },
            streams,
            cancelled: BTreeSet::new(),
            open_from: BTreeMap::new(),
            cursor: None,
            pinned: None,
            landing,
            in_caps,
            max_pkt,
            can_defer,
            timed,
            drain_deadline: None,
            inbound_done,
            output_dead,
            _latch: LatchGuard(latch.clone()),
            _exit: ThreadExitGuard { live: live.clone() },
        };
        reactor.core.spawn(Box::new(recv));
        reactor.core.spawn(Box::new(flush));
    }
    GatewayHandles {
        threads: Vec::new(),
        latch: Some(latch),
        stats,
    }
}

fn paths_keys(paths: &BTreeMap<NetworkId, OutPath>) -> BTreeSet<NetworkId> {
    paths.keys().copied().collect()
}
