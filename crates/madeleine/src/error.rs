//! Error type shared across the library.

use std::fmt;

use crate::types::NodeId;

/// Errors surfaced by the Madeleine API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MadError {
    /// The connection's peer is gone (session teardown or peer exit).
    Disconnected,
    /// A received packet did not fit the destination buffer.
    BufferTooSmall {
        /// Bytes available in the destination.
        have: usize,
        /// Bytes required by the incoming packet or part.
        need: usize,
    },
    /// Unpack sequence diverged from the pack sequence (Madeleine messages
    /// are not self-described: order, sizes, and flags must match).
    SequenceMismatch(String),
    /// A malformed or unexpected control packet (GTM framing violation).
    Protocol(String),
    /// The destination rank is not reachable on this channel.
    UnknownPeer(NodeId),
    /// No route exists to the destination over this virtual channel.
    Unroutable(NodeId),
    /// A static buffer from one driver was handed to another.
    ForeignStaticBuffer {
        /// Driver the buffer belongs to.
        owner: &'static str,
        /// Driver it was offered to.
        user: &'static str,
    },
    /// The message was not finalized (missing `end_packing`/`end_unpacking`).
    NotFinalized,
    /// A peer stopped responding mid-stream (hard fault, not an orderly
    /// teardown): a send toward it failed or its stream was cancelled by a
    /// gateway that could no longer reach it.
    PeerUnreachable(NodeId),
    /// A credit-flow-controlled stream made no progress within its
    /// deadline: the downstream gateway stopped granting credits (stalled
    /// or dead) and the wait timed out.
    CreditTimeout {
        /// Originating rank of the starved stream.
        src: NodeId,
        /// Final destination of the starved stream.
        dest: NodeId,
        /// Per-source message id of the starved stream.
        msg_id: u32,
    },
}

impl fmt::Display for MadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MadError::Disconnected => write!(f, "connection closed by peer"),
            MadError::BufferTooSmall { have, need } => {
                write!(f, "destination buffer too small: have {have}, need {need}")
            }
            MadError::SequenceMismatch(s) => write!(f, "pack/unpack sequence mismatch: {s}"),
            MadError::Protocol(s) => write!(f, "protocol violation: {s}"),
            MadError::UnknownPeer(n) => write!(f, "peer {n} is not part of this channel"),
            MadError::Unroutable(n) => write!(f, "no route to {n} on this virtual channel"),
            MadError::ForeignStaticBuffer { owner, user } => {
                write!(
                    f,
                    "static buffer of driver `{owner}` offered to driver `{user}`"
                )
            }
            MadError::NotFinalized => write!(f, "message dropped before end of packing/unpacking"),
            MadError::PeerUnreachable(n) => write!(f, "peer {n} stopped responding mid-stream"),
            MadError::CreditTimeout { src, dest, msg_id } => write!(
                f,
                "credit wait timed out for stream {src}->{dest}#{msg_id} (downstream stalled)"
            ),
        }
    }
}

impl std::error::Error for MadError {}

/// Library-wide result alias.
pub type Result<T> = std::result::Result<T, MadError>;
