//! Core identifier types.

use std::fmt;

/// Rank of a process in the session (the paper's *node id*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl NodeId {
    /// The rank as a plain index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a declared network (protocol + adapter set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetworkId(pub u32);

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Identifier of a real channel within the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}
