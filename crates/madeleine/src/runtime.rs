//! Execution-environment abstraction.
//!
//! Madeleine's protocol code must run identically on real threads (for the
//! shared-memory and TCP drivers) and under the deterministic virtual clock
//! of the hardware model. Everything environment-dependent — spawning
//! threads, blocking, timestamps, and the *cost accounting* of copies and
//! software overheads — funnels through [`Runtime`].
//!
//! [`StdRuntime`] is the real-time implementation; the simulated one lives
//! in the `mad-sim` crate (it must not be here: this crate stays ignorant of
//! virtual time).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use mad_util::sync::{Condvar, Mutex};

/// An epoch counter that threads can block on — the one blocking primitive
/// the library needs. Semantically identical to `vtime::Signal` so the
/// simulated runtime can delegate directly.
pub trait RtEvent: Send + Sync {
    /// Current epoch.
    fn epoch(&self) -> u64;
    /// Increment the epoch and wake all waiters.
    fn bump(&self);
    /// Block the calling thread until the epoch exceeds `seen`; returns the
    /// epoch observed at wake-up.
    fn wait_past(&self, seen: u64) -> u64;
    /// Like [`RtEvent::wait_past`], but give up after `timeout_ns`
    /// (relative) nanoseconds of the runtime's clock: `Some(epoch)` when
    /// the epoch moved, `None` on timeout. The robustness deadlines of the
    /// gateway (credit waits, teardown drains) are built on this — it is
    /// the only way a blocked protocol thread can observe that a peer has
    /// silently died.
    fn wait_past_timeout(&self, seen: u64, timeout_ns: u64) -> Option<u64>;
    /// Concrete-type access, so a driver can recover runtime-specific
    /// internals (the simulated driver extracts the virtual-clock signal).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// The services Madeleine requires from its execution environment.
pub trait Runtime: Send + Sync {
    /// Spawn a named thread. Under the simulated runtime this registers a
    /// virtual-clock actor for the thread.
    fn spawn(&self, name: String, f: Box<dyn FnOnce() + Send>) -> JoinHandle<()>;

    /// Allocate a fresh blocking event.
    fn event(&self) -> Arc<dyn RtEvent>;

    /// Account for a `bytes`-long memory copy performed by the calling
    /// thread. Free on real hardware (the copy itself already cost real
    /// time); on the simulator it advances the thread's virtual clock by
    /// `bytes / memcpy_bandwidth`.
    fn charge_copy(&self, bytes: usize);

    /// Account for a fixed software overhead (e.g. the gateway pipeline's
    /// per-buffer-switch cost, §3.3.1). Free on real hardware; a virtual
    /// sleep on the simulator.
    fn charge_overhead(&self, nanos: u64);

    /// Monotonic timestamp in nanoseconds (wall clock or virtual clock),
    /// used by benchmarks to compute bandwidth.
    fn now_nanos(&self) -> u64;

    /// Hold the world still while a multi-threaded setup completes; the
    /// returned guard is dropped when setup is done. A no-op on real
    /// threads; prevents virtual-time races during simulated bootstrap.
    fn setup_guard(&self) -> Box<dyn std::any::Any + Send>;

    /// The event tracer attached to this runtime. Protocol code records
    /// spans/counters through this handle; the default is a disabled
    /// tracer, so untraced runs pay one branch per instrumentation
    /// point.
    fn tracer(&self) -> mad_trace::Tracer {
        mad_trace::Tracer::off()
    }

    /// The session-wide recycling buffer pool. Hot-path code (gateway
    /// landings, GTM staging, control-packet encodes) draws its buffers
    /// here so steady-state forwarding allocates nothing; because the
    /// whole session shares one runtime, a buffer staged on the sending
    /// node and adopted on the receiving one closes the recycle loop.
    fn pool(&self) -> &Arc<mad_util::pool::BufferPool>;

    /// Total threads spawned through this runtime so far — engine
    /// threads, application nodes, driver readers and pollers. This is
    /// the observable thread budget the reactor engine exists to bound;
    /// sessions flush it to the `rt:` trace track at teardown.
    fn threads_spawned(&self) -> u64 {
        0
    }
}

#[derive(Default)]
struct StdEvent {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl RtEvent for StdEvent {
    fn epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    fn bump(&self) {
        let mut e = self.epoch.lock();
        *e += 1;
        self.cv.notify_all();
    }

    fn wait_past(&self, seen: u64) -> u64 {
        let mut e = self.epoch.lock();
        while *e <= seen {
            self.cv.wait(&mut e);
        }
        *e
    }

    fn wait_past_timeout(&self, seen: u64, timeout_ns: u64) -> Option<u64> {
        let deadline = Instant::now() + std::time::Duration::from_nanos(timeout_ns);
        let mut e = self.epoch.lock();
        while *e <= seen {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let res = self.cv.wait_for(&mut e, deadline - now);
            if res.timed_out() && *e <= seen {
                return None;
            }
        }
        Some(*e)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Real-threads runtime: `std::thread`, condvar-backed events, free cost
/// accounting, `Instant`-based timestamps.
pub struct StdRuntime {
    start: Instant,
    tracer: mad_trace::Tracer,
    pool: Arc<mad_util::pool::BufferPool>,
    spawned: std::sync::atomic::AtomicU64,
}

impl Default for StdRuntime {
    fn default() -> Self {
        StdRuntime {
            start: Instant::now(),
            tracer: mad_trace::Tracer::off(),
            pool: mad_util::pool::BufferPool::new(),
            spawned: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// Trace clock for [`StdRuntime`]: shares the runtime's epoch so trace
/// timestamps live in the same domain as [`Runtime::now_nanos`].
struct StdClock {
    start: Instant,
}

impl mad_trace::TraceClock for StdClock {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl StdRuntime {
    /// Create a shareable instance.
    pub fn shared() -> Arc<dyn Runtime> {
        Arc::new(StdRuntime::default())
    }

    /// A real-threads runtime recording into `tracer`. Binds the
    /// tracer's clock to this runtime's monotonic epoch (domain
    /// `"mono"`), so trace timestamps align with `now_nanos`.
    pub fn traced(tracer: mad_trace::Tracer) -> Arc<dyn Runtime> {
        let start = Instant::now();
        tracer.init_clock(Arc::new(StdClock { start }), "mono");
        Arc::new(StdRuntime {
            start,
            tracer,
            pool: mad_util::pool::BufferPool::new(),
            spawned: std::sync::atomic::AtomicU64::new(0),
        })
    }
}

impl Runtime for StdRuntime {
    fn spawn(&self, name: String, f: Box<dyn FnOnce() + Send>) -> JoinHandle<()> {
        self.spawned
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("spawning runtime thread")
    }

    fn event(&self) -> Arc<dyn RtEvent> {
        Arc::new(StdEvent::default())
    }

    fn charge_copy(&self, _bytes: usize) {}

    fn charge_overhead(&self, _nanos: u64) {}

    fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn setup_guard(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(())
    }

    fn tracer(&self) -> mad_trace::Tracer {
        self.tracer.clone()
    }

    fn pool(&self) -> &Arc<mad_util::pool::BufferPool> {
        &self.pool
    }

    fn threads_spawned(&self) -> u64 {
        self.spawned.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A multi-producer multi-consumer FIFO whose blocking operations go through
/// an [`RtEvent`], so it works under both runtimes. Used for driver receive
/// queues and the gateway pipeline slots. This type is only a constructor
/// namespace; the live halves are [`RtSender`] and [`RtReceiver`].
/// A mutex whose waiters block through an [`RtEvent`], making contention
/// visible to the virtual clock. A plain mutex held across a blocking
/// driver operation would freeze the simulation: the waiter appears
/// "running" to the clock while actually parked in the OS, so virtual time
/// can never advance to the point where the holder releases. Every lock
/// that can be held across a conduit send/receive must be an `RtLock`.
pub struct RtLock<T> {
    inner: Mutex<T>,
    released: Arc<dyn RtEvent>,
}

impl<T> RtLock<T> {
    /// Wrap `value` with an event from `rt`.
    pub fn new(rt: &dyn Runtime, value: T) -> Self {
        RtLock {
            inner: Mutex::new(value),
            released: rt.event(),
        }
    }

    /// Acquire the lock, blocking through the runtime event while held by
    /// another thread.
    pub fn lock(&self) -> RtLockGuard<'_, T> {
        loop {
            let seen = self.released.epoch();
            if let Some(guard) = self.inner.try_lock() {
                return RtLockGuard {
                    lock: self,
                    guard: std::mem::ManuallyDrop::new(guard),
                };
            }
            self.released.wait_past(seen);
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<RtLockGuard<'_, T>> {
        self.inner.try_lock().map(|guard| RtLockGuard {
            lock: self,
            guard: std::mem::ManuallyDrop::new(guard),
        })
    }
}

/// RAII guard of an [`RtLock`]; wakes waiters on drop.
pub struct RtLockGuard<'a, T> {
    lock: &'a RtLock<T>,
    guard: std::mem::ManuallyDrop<mad_util::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for RtLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RtLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for RtLockGuard<'_, T> {
    fn drop(&mut self) {
        // The mutex must be released *before* the event is bumped: a waiter
        // woken by the bump retries `try_lock` exactly once before
        // re-arming its wait, so bumping while still holding the mutex
        // would let it re-arm against an epoch that never moves again.
        // SAFETY: `guard` is dropped exactly once, here.
        unsafe { std::mem::ManuallyDrop::drop(&mut self.guard) };
        self.lock.released.bump();
    }
}

/// A multi-producer multi-consumer FIFO whose blocking operations go
/// through an [`RtEvent`], so it works under both runtimes. Used for driver
/// receive queues and the gateway pipeline slots. This type is only a
/// constructor namespace; the live halves are [`RtSender`]/[`RtReceiver`].
pub struct RtQueue<T>(std::marker::PhantomData<T>);

struct RtQueueInner<T> {
    q: Mutex<QueueState<T>>,
    /// Bumped on push and on producer disconnect.
    nonempty: Arc<dyn RtEvent>,
    /// Bumped on pop (for bounded-push waiters).
    nonfull: Arc<dyn RtEvent>,
    capacity: usize,
}

struct QueueState<T> {
    items: std::collections::VecDeque<T>,
    producers: usize,
    consumers: usize,
}

/// Producer handle of an [`RtQueue`]. Dropping the last producer wakes
/// blocked consumers with a disconnect.
pub struct RtSender<T> {
    inner: Arc<RtQueueInner<T>>,
}

/// Consumer handle of an [`RtQueue`].
pub struct RtReceiver<T> {
    inner: Arc<RtQueueInner<T>>,
}

impl<T> RtQueue<T> {
    /// Create a queue with the given capacity bound (`usize::MAX` for
    /// unbounded), allocating its events from `rt`.
    pub fn with_capacity(rt: &dyn Runtime, capacity: usize) -> (RtSender<T>, RtReceiver<T>) {
        let inner = Arc::new(RtQueueInner {
            q: Mutex::new(QueueState {
                items: std::collections::VecDeque::new(),
                producers: 1,
                consumers: 1,
            }),
            nonempty: rt.event(),
            nonfull: rt.event(),
            capacity,
        });
        (
            RtSender {
                inner: inner.clone(),
            },
            RtReceiver { inner },
        )
    }

    /// Create a queue whose `nonempty` notifications go to a caller-provided
    /// event, so one event can multiplex several queues.
    pub fn with_event(
        rt: &dyn Runtime,
        capacity: usize,
        nonempty: Arc<dyn RtEvent>,
    ) -> (RtSender<T>, RtReceiver<T>) {
        let inner = Arc::new(RtQueueInner {
            q: Mutex::new(QueueState {
                items: std::collections::VecDeque::new(),
                producers: 1,
                consumers: 1,
            }),
            nonempty,
            nonfull: rt.event(),
            capacity,
        });
        (
            RtSender {
                inner: inner.clone(),
            },
            RtReceiver { inner },
        )
    }
}

impl<T> Clone for RtSender<T> {
    fn clone(&self) -> Self {
        self.inner.q.lock().producers += 1;
        RtSender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for RtSender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.inner.q.lock();
            st.producers -= 1;
            st.producers
        };
        if remaining == 0 {
            self.inner.nonempty.bump();
        }
    }
}

impl<T> RtSender<T> {
    /// Push, blocking while the queue is at capacity. Returns `Err(item)`
    /// if every receiver is gone.
    pub fn push(&self, item: T) -> std::result::Result<(), T> {
        loop {
            let seen = self.inner.nonfull.epoch();
            {
                let mut st = self.inner.q.lock();
                if st.consumers == 0 {
                    return Err(item);
                }
                if st.items.len() < self.inner.capacity {
                    st.items.push_back(item);
                    drop(st);
                    self.inner.nonempty.bump();
                    return Ok(());
                }
            }
            self.inner.nonfull.wait_past(seen);
        }
    }

    /// Non-blocking push: `Err(item)` when the queue is at capacity or every
    /// receiver is gone. Lets producers observe backpressure (the gateway
    /// counts these as pipeline stalls) before falling back to a blocking
    /// [`RtSender::push`].
    pub fn try_push(&self, item: T) -> std::result::Result<(), T> {
        let mut st = self.inner.q.lock();
        if st.consumers == 0 || st.items.len() >= self.inner.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.inner.nonempty.bump();
        Ok(())
    }
}

impl<T> Clone for RtReceiver<T> {
    fn clone(&self) -> Self {
        self.inner.q.lock().consumers += 1;
        RtReceiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for RtReceiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.inner.q.lock();
            st.consumers -= 1;
            st.consumers
        };
        if remaining == 0 {
            // Wake producers blocked on a full queue so they observe the
            // disconnect.
            self.inner.nonfull.bump();
        }
    }
}

impl<T> RtReceiver<T> {
    /// Pop, blocking until an item arrives; `None` once all producers are
    /// gone and the queue is drained.
    pub fn pop(&self) -> Option<T> {
        loop {
            let seen = self.inner.nonempty.epoch();
            {
                let mut st = self.inner.q.lock();
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.inner.nonfull.bump();
                    return Some(v);
                }
                if st.producers == 0 {
                    return None;
                }
            }
            self.inner.nonempty.wait_past(seen);
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.inner.q.lock();
        let v = st.items.pop_front();
        if v.is_some() {
            drop(st);
            self.inner.nonfull.bump();
        }
        v
    }

    /// True if an item is queued right now.
    pub fn has_pending(&self) -> bool {
        !self.inner.q.lock().items.is_empty()
    }

    /// True once every producer is gone and the queue is drained: nothing
    /// will ever arrive again.
    pub fn is_closed(&self) -> bool {
        let st = self.inner.q.lock();
        st.producers == 0 && st.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_event_wait_and_bump() {
        let rt = StdRuntime::default();
        let ev = rt.event();
        assert_eq!(ev.epoch(), 0);
        let ev2 = ev.clone();
        let h = std::thread::spawn(move || ev2.wait_past(0));
        std::thread::sleep(std::time::Duration::from_millis(10));
        ev.bump();
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn std_event_wait_timeout_expires_and_wakes() {
        let rt = StdRuntime::default();
        let ev = rt.event();
        // Nothing bumps: the wait must time out, not hang.
        assert_eq!(ev.wait_past_timeout(0, 5_000_000), None);
        // A bump within the window is observed.
        let ev2 = ev.clone();
        let h = std::thread::spawn(move || ev2.wait_past_timeout(0, 5_000_000_000));
        std::thread::sleep(std::time::Duration::from_millis(10));
        ev.bump();
        assert_eq!(h.join().unwrap(), Some(1));
    }

    #[test]
    fn rt_queue_fifo_and_disconnect() {
        let rt = StdRuntime::default();
        let (tx, rx) = RtQueue::with_capacity(&rt, usize::MAX);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        drop(tx);
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn rt_queue_bounded_blocks_producer() {
        let rt = StdRuntime::default();
        let (tx, rx) = RtQueue::<u32>::with_capacity(&rt, 1);
        tx.push(1).unwrap();
        let t0 = Instant::now();
        let h = std::thread::spawn(move || {
            tx.push(2).unwrap(); // blocks until the consumer pops
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(rx.pop(), Some(1));
        h.join().unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    fn rt_queue_push_fails_without_receiver() {
        let rt = StdRuntime::default();
        let (tx, rx) = RtQueue::with_capacity(&rt, usize::MAX);
        drop(rx);
        assert_eq!(tx.push(7), Err(7));
    }

    #[test]
    fn rt_lock_mutual_exclusion_and_wakeup() {
        let rt = StdRuntime::default();
        let lock = Arc::new(RtLock::new(&rt, 0u32));
        let l2 = lock.clone();
        let g = lock.lock();
        let h = std::thread::spawn(move || {
            let mut g = l2.lock(); // blocks until main releases
            *g += 1;
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(g);
        assert_eq!(h.join().unwrap(), 1);
        assert_eq!(*lock.lock(), 1);
    }

    #[test]
    fn rt_lock_try_lock() {
        let rt = StdRuntime::default();
        let lock = RtLock::new(&rt, ());
        let g = lock.try_lock().expect("uncontended");
        assert!(lock.try_lock().is_none(), "held");
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn rt_lock_handoff_storm() {
        // Regression test for the lost-wakeup bug: the guard must release
        // the mutex *before* bumping. Many rapid handoffs between threads
        // would hang within a few iterations if the order regressed.
        let rt = StdRuntime::default();
        let lock = Arc::new(RtLock::new(&rt, 0u64));
        let mut handles = vec![];
        for _ in 0..4 {
            let lock = lock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    *lock.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 8_000);
    }

    #[test]
    fn std_runtime_clock_is_monotonic() {
        let rt = StdRuntime::default();
        let a = rt.now_nanos();
        let b = rt.now_nanos();
        assert!(b >= a);
    }
}
