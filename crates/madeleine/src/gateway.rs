//! The gateway forwarding engine (paper §2.2.2, Fig. 4).
//!
//! On a gateway node, every network of a virtual channel gets a *polling*
//! thread listening on that network's special channel; every ordered pair
//! of networks gets a *forwarding* thread. The two are coupled by a bounded
//! pipeline of buffers (two by default, the paper's double-buffering): the
//! polling thread receives fragment *k+1* while the forwarding thread
//! retransmits fragment *k* on the other network.
//!
//! ## Zero-copy handoff (paper §2.3)
//!
//! The polling thread chooses the landing buffer per fragment from the
//! buffer disciplines of the two drivers:
//!
//! | incoming   | outgoing  | behaviour                                        |
//! |------------|-----------|--------------------------------------------------|
//! | any        | dynamic   | take the incoming driver's own buffer, send from it (0 copies) |
//! | dynamic    | static    | receive *into* an outgoing-driver static buffer (0 copies)     |
//! | static     | static    | receive into an outgoing static buffer — one unavoidable copy  |
//!
//! Setting [`GatewayConfig::zero_copy`] to `false` forces the naive
//! receive-then-copy path, which is the A2 ablation of the benchmarks.
//!
//! The per-fragment software cost of exchanging pipeline buffers (§3.3.1
//! estimates it at ~40 µs on the paper's hardware) is charged through
//! [`Runtime::charge_overhead`], so the simulated gateway reproduces the
//! paper's pipeline-period analysis.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::channel::Channel;
use crate::conduit::{BufferMode, Conduit, DriverCaps, StaticBuf};
use crate::error::{MadError, Result};
use crate::gtm::{self, Control};
use crate::routing::RouteTable;
use crate::runtime::{RtQueue, RtReceiver, RtSender, Runtime};
use crate::types::{NetworkId, NodeId};
use crate::vchannel::NOTE_FORWARDED;

/// Live counters of one gateway's forwarding engine, updated by its
/// polling threads. Cheap relaxed atomics: read them after the session
/// (or at any point for monitoring).
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Complete messages relayed.
    pub messages: AtomicU64,
    /// Payload fragment bytes relayed (control packets excluded).
    pub fragment_bytes: AtomicU64,
    /// Payload fragments relayed.
    pub fragments: AtomicU64,
}

impl GatewayStats {
    /// Snapshot as (messages, fragments, fragment_bytes).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.fragments.load(Ordering::Relaxed),
            self.fragment_bytes.load(Ordering::Relaxed),
        )
    }
}

/// Tuning knobs of a gateway's forwarding engine.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Number of pipeline buffers per direction. `2` is the paper's
    /// double-buffering; `1` disables pipelining (the polling thread
    /// retransmits each fragment itself before receiving the next).
    pub pipeline_depth: usize,
    /// Software cost charged per fragment handoff (the paper's ~40 µs
    /// buffer-switch overhead). Only the simulated runtime turns this into
    /// time.
    pub switch_overhead_ns: u64,
    /// Use the zero-copy buffer handoff matrix; `false` forces the naive
    /// extra-copy path (ablation A2).
    pub zero_copy: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            pipeline_depth: 2,
            switch_overhead_ns: 0,
            zero_copy: true,
        }
    }
}

/// A buffer traveling through the gateway pipeline.
enum FwdBuf {
    /// The incoming driver's own buffer (outgoing driver is dynamic).
    Owned(Vec<u8>),
    /// An outgoing-driver static buffer, filled by the receive.
    Static(StaticBuf),
}

/// One pipeline slot.
enum FwdItem {
    /// Start of a message: where it goes next and its (re-encoded) header.
    Start {
        to: NodeId,
        last_hop: bool,
        header: Vec<u8>,
    },
    /// A GTM control packet forwarded verbatim (part descriptor).
    Control(Vec<u8>),
    /// A payload fragment.
    Frag(FwdBuf),
    /// The message's end packet, forwarded verbatim.
    End(Vec<u8>),
}

/// Where the polling thread pushes pipeline items.
enum Sink {
    /// Pipelined: a bounded queue drained by a forwarding thread.
    Queue(RtSender<FwdItem>, OutPath),
    /// Depth-1: the polling thread retransmits synchronously.
    Inline(OutPath),
}

impl Sink {
    fn path(&self) -> &OutPath {
        match self {
            Sink::Queue(_, p) | Sink::Inline(p) => p,
        }
    }
}

/// The outgoing channels of one network direction.
#[derive(Clone)]
struct OutPath {
    regular: Arc<Channel>,
    special: Arc<Channel>,
}

impl OutPath {
    fn channel(&self, last_hop: bool) -> &Arc<Channel> {
        if last_hop {
            &self.regular
        } else {
            &self.special
        }
    }
}

/// Running gateway engine; joining waits for clean shutdown (which happens
/// when every inbound special-channel peer has disconnected).
pub struct GatewayHandles {
    threads: Vec<JoinHandle<()>>,
    stats: Arc<GatewayStats>,
}

impl GatewayHandles {
    /// Wait for all gateway threads to finish.
    pub fn join(self) {
        for t in self.threads {
            if let Err(e) = t.join() {
                std::panic::resume_unwind(e);
            }
        }
    }

    /// The engine's live counters.
    pub fn stats(&self) -> &Arc<GatewayStats> {
        &self.stats
    }
}

/// Spawn the forwarding engine of one gateway node for one virtual channel.
///
/// `regular`/`special` hold this node's two real channels per network;
/// `routes` is the gateway's own routing table over the virtual channel.
#[allow(clippy::too_many_arguments)] // a one-caller bootstrap function
pub fn spawn_gateway(
    rank: NodeId,
    vc_name: &str,
    regular: BTreeMap<NetworkId, Arc<Channel>>,
    special: BTreeMap<NetworkId, Arc<Channel>>,
    routes: RouteTable,
    cfg: GatewayConfig,
    runtime: Arc<dyn Runtime>,
    stop: Arc<AtomicBool>,
) -> GatewayHandles {
    assert!(cfg.pipeline_depth >= 1, "pipeline depth must be at least 1");
    let nets: Vec<NetworkId> = special.keys().copied().collect();
    let mut threads = Vec::new();
    let routes = Arc::new(routes);
    let stats = Arc::new(GatewayStats::default());

    // One polling thread per inbound network; per (in, out) ordered pair a
    // forwarding thread when pipelining is on.
    for &net_in in &nets {
        let mut sinks: BTreeMap<NetworkId, Sink> = BTreeMap::new();
        for &net_out in &nets {
            if net_out == net_in {
                continue;
            }
            let out_path = OutPath {
                regular: regular[&net_out].clone(),
                special: special[&net_out].clone(),
            };
            if cfg.pipeline_depth == 1 {
                sinks.insert(net_out, Sink::Inline(out_path));
            } else {
                let (tx, rx) = RtQueue::<FwdItem>::with_capacity(&*runtime, cfg.pipeline_depth - 1);
                sinks.insert(net_out, Sink::Queue(tx, out_path.clone()));
                let name = format!("gw{}-{}-fwd-{}-{}", rank.0, vc_name, net_in, net_out);
                threads
                    .push(runtime.spawn(name, Box::new(move || forwarding_thread(rx, out_path))));
            }
        }
        let in_channel = special[&net_in].clone();
        let routes = routes.clone();
        let rt = runtime.clone();
        let stop = stop.clone();
        let stats = stats.clone();
        let name = format!("gw{}-{}-in-{}", rank.0, vc_name, net_in);
        threads.push(runtime.spawn(
            name,
            Box::new(move || polling_thread(rank, in_channel, sinks, routes, cfg, rt, stop, stats)),
        ));
    }
    GatewayHandles { threads, stats }
}

/// The polling thread of one inbound network: waits for forwarded messages
/// on the special channel and streams them into the pipeline.
#[allow(clippy::too_many_arguments)] // internal thread entry point
fn polling_thread(
    rank: NodeId,
    in_channel: Arc<Channel>,
    sinks: BTreeMap<NetworkId, Sink>,
    routes: Arc<RouteTable>,
    cfg: GatewayConfig,
    runtime: Arc<dyn Runtime>,
    stop: Arc<AtomicBool>,
    stats: Arc<GatewayStats>,
) {
    loop {
        let peer = match in_channel.select_ready_until(|| stop.load(Ordering::Acquire)) {
            Ok(p) => p,
            Err(_) => return, // inbound peers gone or session stopping
        };
        match forward_one_message(
            rank,
            &in_channel,
            peer,
            &sinks,
            &routes,
            cfg,
            &runtime,
            &stats,
        ) {
            Ok(()) => {
                stats.messages.fetch_add(1, Ordering::Relaxed);
            }
            Err(MadError::Disconnected) => return,
            Err(e) => panic!("gateway {rank} forwarding failed: {e}"),
        }
    }
}

/// Relay one complete GTM message from `peer` toward its next hop.
#[allow(clippy::too_many_arguments)] // internal helper of polling_thread
fn forward_one_message(
    rank: NodeId,
    in_channel: &Arc<Channel>,
    peer: NodeId,
    sinks: &BTreeMap<NetworkId, Sink>,
    routes: &RouteTable,
    cfg: GatewayConfig,
    runtime: &Arc<dyn Runtime>,
    stats: &GatewayStats,
) -> Result<()> {
    let header_pkt = in_channel.lock_conduit(peer)?.recv_owned()?;
    let header = match gtm::decode_control(&header_pkt)? {
        Control::Header(h) => h,
        other => {
            return Err(MadError::Protocol(format!(
                "gateway expected GTM header, got {other:?}"
            )))
        }
    };
    if header.dest == rank {
        return Err(MadError::Protocol(format!(
            "message for the gateway itself ({rank}) arrived on the special channel"
        )));
    }
    let hop = routes.hop(header.dest)?;
    let sink = sinks.get(&hop.net).ok_or_else(|| {
        MadError::Protocol(format!(
            "route to {} leaves on {}, which this gateway does not bridge",
            header.dest, hop.net
        ))
    })?;
    // The outgoing caps decide the zero-copy landing-buffer choice; they
    // are constant per channel, so fetch them once per message.
    let out_caps = sink.path().channel(hop.last).caps();

    let mut out = OutState::start(sink, hop.node, hop.last, header_pkt)?;
    loop {
        let ctl_pkt = in_channel.lock_conduit(peer)?.recv_owned()?;
        match gtm::decode_control(&ctl_pkt)? {
            Control::Part(desc) => {
                let mut remaining = desc.len;
                out.push(FwdItem::Control(ctl_pkt))?;
                while remaining > 0 {
                    let frag_len = remaining.min(header.mtu as u64) as usize;
                    let buf = receive_fragment(in_channel, peer, frag_len, out_caps, cfg)?;
                    out.push(FwdItem::Frag(buf))?;
                    runtime.charge_overhead(cfg.switch_overhead_ns);
                    stats.fragments.fetch_add(1, Ordering::Relaxed);
                    stats
                        .fragment_bytes
                        .fetch_add(frag_len as u64, Ordering::Relaxed);
                    remaining -= frag_len as u64;
                }
            }
            Control::End => {
                out.push(FwdItem::End(ctl_pkt))?;
                return Ok(());
            }
            Control::Header(_) => {
                return Err(MadError::Protocol(
                    "nested GTM header inside a message".into(),
                ))
            }
        }
    }
}

/// Receive one fragment from the inbound conduit into the cheapest buffer
/// allowed by the outgoing driver's discipline (the zero-copy matrix).
fn receive_fragment(
    in_channel: &Arc<Channel>,
    peer: NodeId,
    frag_len: usize,
    out_caps: DriverCaps,
    cfg: GatewayConfig,
) -> Result<FwdBuf> {
    let mut conduit = in_channel.lock_conduit(peer)?;
    if !cfg.zero_copy {
        // Naive path (ablation A2): always receive into a plain temporary
        // buffer, paying whatever extraction copy the inbound driver
        // charges, and later whatever staging the outbound driver needs.
        let mut tmp = vec![0u8; frag_len];
        let n = conduit.recv_into(&mut tmp)?;
        if n != frag_len {
            return Err(MadError::Protocol(format!(
                "fragment length {n} does not match descriptor remainder {frag_len}"
            )));
        }
        return Ok(FwdBuf::Owned(tmp));
    }
    if out_caps.mode == BufferMode::Static {
        // Land the fragment directly in an outgoing-driver buffer. When the
        // inbound driver is static too, `recv_into` charges the one
        // unavoidable copy.
        let mut sb = StaticBuf::new(out_caps.name, frag_len);
        let n = conduit.recv_into(sb.as_mut_slice())?;
        if n != frag_len {
            return Err(MadError::Protocol(format!(
                "fragment length {n} does not match descriptor remainder {frag_len}"
            )));
        }
        Ok(FwdBuf::Static(sb))
    } else {
        // Outgoing driver sends from anywhere: take the inbound driver's
        // own buffer (zero copies even when the inbound side is static).
        let data = conduit.recv_owned()?;
        if data.len() != frag_len {
            return Err(MadError::Protocol(format!(
                "fragment length {} does not match descriptor remainder {frag_len}",
                data.len()
            )));
        }
        Ok(FwdBuf::Owned(data))
    }
}

/// Per-message output handle: pipelined (queue) or inline (direct sends).
enum OutState<'a> {
    Queue(&'a RtSender<FwdItem>),
    Inline {
        path: &'a OutPath,
        to: NodeId,
        last_hop: bool,
    },
}

impl<'a> OutState<'a> {
    fn start(sink: &'a Sink, to: NodeId, last_hop: bool, header: Vec<u8>) -> Result<Self> {
        match sink {
            Sink::Queue(tx, _) => {
                tx.push(FwdItem::Start {
                    to,
                    last_hop,
                    header,
                })
                .map_err(|_| MadError::Disconnected)?;
                Ok(OutState::Queue(tx))
            }
            Sink::Inline(path) => {
                let channel = path.channel(last_hop);
                let mut conduit = channel.lock_conduit(to)?;
                if last_hop {
                    conduit.send(&[&[NOTE_FORWARDED]])?;
                }
                conduit.send(&[&header])?;
                Ok(OutState::Inline { path, to, last_hop })
            }
        }
    }

    fn push(&mut self, item: FwdItem) -> Result<()> {
        match self {
            OutState::Queue(tx) => tx.push(item).map_err(|_| MadError::Disconnected),
            OutState::Inline { path, to, last_hop } => {
                let channel = path.channel(*last_hop);
                let mut conduit = channel.lock_conduit(*to)?;
                send_item(&mut **conduit, item)
            }
        }
    }
}

/// Transmit one pipeline item on an outgoing conduit.
fn send_item(conduit: &mut dyn Conduit, item: FwdItem) -> Result<()> {
    match item {
        FwdItem::Start { .. } => unreachable!("Start is handled at message setup"),
        FwdItem::Control(c) => conduit.send(&[&c]),
        FwdItem::Frag(FwdBuf::Owned(v)) => conduit.send(&[&v]),
        FwdItem::Frag(FwdBuf::Static(sb)) => conduit.send_static(sb),
        FwdItem::End(e) => conduit.send(&[&e]),
    }
}

/// The forwarding thread of one (inbound, outbound) network pair: drains
/// the pipeline and retransmits. Holds the outgoing conduit for the whole
/// message so concurrent relays to the same next hop cannot interleave.
fn forwarding_thread(rx: RtReceiver<FwdItem>, path: OutPath) {
    loop {
        let Some(item) = rx.pop() else {
            return; // polling thread gone: shut down
        };
        let FwdItem::Start {
            to,
            last_hop,
            header,
        } = item
        else {
            panic!("gateway pipeline out of sync: expected Start");
        };
        let channel = path.channel(last_hop);
        let mut conduit = match channel.lock_conduit(to) {
            Ok(c) => c,
            Err(_) => return,
        };
        let send = |conduit: &mut dyn Conduit, item: FwdItem| send_item(conduit, item);
        if last_hop && conduit.send(&[&[NOTE_FORWARDED]]).is_err() {
            return;
        }
        if conduit.send(&[&header]).is_err() {
            return;
        }
        loop {
            let Some(item) = rx.pop() else { return };
            let end = matches!(item, FwdItem::End(_));
            if send(&mut **conduit, item).is_err() {
                return;
            }
            if end {
                break;
            }
        }
    }
}
