//! The gateway forwarding engine (paper §2.2.2, Fig. 4).
//!
//! On a gateway node, every network of a virtual channel gets a *polling*
//! thread listening on that network's special channel; every ordered pair
//! of networks gets a *forwarding* thread. The two are coupled by a bounded
//! pipeline of buffers (two by default, the paper's double-buffering): the
//! polling thread receives packet *k+1* while the forwarding thread
//! retransmits packet *k* on the other network.
//!
//! ## Fragment-granular scheduling
//!
//! Since GTM wire-format version 2, every packet names its stream (source,
//! destination, message id), so the engine no longer drains one message at
//! a time. The polling thread round-robins across the inbound connections
//! ([`Channel::select_ready_after`]) and relays *one packet per turn*,
//! keeping per-stream state in a demultiplexing table. A 16 MB bulk
//! transfer therefore no longer stalls a 1 KB message from another peer
//! crossing the same gateway — the head-of-line blocking measured by the
//! `ablation_hol_blocking` bench. [`GatewayConfig::exclusive_streams`]
//! restores the old message-at-a-time discipline as that ablation's
//! baseline.
//!
//! Because the stream tag is route-invariant, packets are forwarded
//! verbatim: the engine never re-encodes anything.
//!
//! ## Transmit batching
//!
//! A slow outbound network pays a fixed per-send cost (protocol overhead,
//! staging) for every packet. When the pipeline queue has a backlog and
//! [`GatewayConfig::max_batch`] ≥ 2, the forwarding thread coalesces
//! queued packets bound for the same outgoing conduit into one [`gtm`]
//! batch frame — one wire send amortizes one per-send overhead over the
//! whole train. Credits are still consumed per fragment *before* a packet
//! joins a train (the occupancy bound is unchanged) and grants are
//! aggregated into one credit packet per stream afterwards. Frames stay
//! within the outgoing driver's preferred packet size, so bulk fragments
//! already at the route MTU keep their single-packet zero-copy path. The
//! next hop splits the train and re-coalesces by its own queue state;
//! batch frames are never forwarded verbatim.
//!
//! ## Credit-based flow control
//!
//! The paper names bandwidth control across the gateway as future work:
//! without it, a fast inbound network dumps a whole bulk message into the
//! gateway when the outbound network is slower. With
//! [`GatewayConfig::credit_window`] set, every *fragment* sent toward a
//! gateway consumes one credit from the stream's window, and the gateway
//! returns one credit upstream each time it finishes *retransmitting* one
//! — so at most `window` fragments of a stream are resident per gateway
//! and occupancy is bounded by `window × (MTU + prelude)` instead of the
//! message size. Credits travel hop-by-hop as [`gtm`] control packets on
//! the same conduits as the stream, in the opposite direction; the
//! per-node accounting lives in a shared [`CreditLedger`].
//!
//! Every credit wait is deadline-bounded ([`GatewayConfig`]'s
//! `credit_timeout_ns`): a stalled or dead downstream degrades the
//! affected stream into a typed cancellation
//! ([`MadError::CreditTimeout`] / [`MadError::PeerUnreachable`]) that
//! propagates both ways as a cancel packet, while unrelated streams keep
//! flowing. Without a window there is no upstream backchannel, so a
//! cancelled stream is dropped silently at the gateway (its sender cannot
//! be told) — flow control is also what makes fault degradation loud.
//!
//! ## Zero-copy handoff (paper §2.3)
//!
//! The polling thread picks a per-connection landing policy from the
//! buffer disciplines of the outgoing drivers it feeds:
//!
//! | incoming   | outgoing  | behaviour                                        |
//! |------------|-----------|--------------------------------------------------|
//! | any        | dynamic   | take the incoming driver's own buffer, send from it (0 copies) |
//! | dynamic    | static    | receive *into* an outgoing-driver static buffer (0 copies)     |
//! | static     | static    | receive into an outgoing static buffer — one unavoidable copy  |
//!
//! A stream's packet size is not known before the receive, so static
//! landings use a buffer sized for the largest MTU announced by any open
//! stream's header (headers always precede fragments on a conduit) and
//! trim it afterwards. Setting [`GatewayConfig::zero_copy`] to `false`
//! forces the naive receive-then-copy path, which is the A2 ablation of
//! the benchmarks.
//!
//! The per-fragment software cost of exchanging pipeline buffers (§3.3.1
//! estimates it at ~40 µs on the paper's hardware) is charged through
//! [`Runtime::charge_overhead`], so the simulated gateway reproduces the
//! paper's pipeline-period analysis.
//!
//! ## Engine cores: threaded and reactor
//!
//! The engine above is described in terms of *threads* — one polling
//! thread per inbound network, one forwarding thread per (in, out) pair —
//! which is [`EngineKind::Threaded`], the paper-faithful baseline. That
//! costs 2×(networks−1)+… OS threads per gateway per virtual channel and
//! caps how many channels one node can host. [`EngineKind::Reactor`]
//! runs the same demultiplexing logic as poll-driven state machines
//! ([`reactor_engine`]) on a gateway-node-wide [`mad_util::reactor`]
//! worker pool parked on the node's arrival event: credit waits, the
//! teardown drain, and batch coalescing become reactor timers and
//! non-blocking queue scans instead of blocked threads. Both engines
//! funnel through the same [`ItemSink`]-generic `relay_packet`, which is
//! what makes their forwarded byte streams identical (asserted by the
//! `prop_engine` property test). Select with [`GatewayConfig::engine`],
//! or set `MAD_ENGINE=reactor` to flip every default-constructed config —
//! the switch CI uses to run whole suites in reactor mode.
//!
//! ## Teardown
//!
//! Engines share a [`GatewayStop`]: the stop request only takes effect
//! once every accepted stream — across *all* gateways of the session — has
//! had its end packet retransmitted, closing the old teardown window in
//! which a multi-hop fragment could be dropped between two gateways. A
//! gateway whose outbound conduit dies mid-stream abandons its open
//! streams on exit so the rest of the session can still stop. The drain
//! itself is bounded by `drain_timeout_ns`: if a fault leaves a stream
//! that will never end (its source died silently), the engine abandons it
//! after the deadline instead of hanging the session forever.

#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::redundant_clone,
    clippy::large_types_passed_by_value
)]

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use mad_trace::{trace_instant, trace_span, Gauge, Tracer};
use mad_util::pool::PooledBuf;
use mad_util::sync::Mutex;

use crate::channel::Channel;
use crate::conduit::{BufferMode, Conduit, StaticBuf};
use crate::control::Tuning;
use crate::credit::{CreditLedger, TakeFailure};
use crate::error::{MadError, Result};
use crate::gtm::{self, CancelReason, PacketBody, StreamKey, StreamTag, PRELUDE_LEN};
use crate::membership::MembershipPlane;
use crate::metrics_plane::GwMetrics;
use crate::routing::RouteTable;
use crate::runtime::{RtEvent, RtQueue, RtReceiver, RtSender, Runtime};
use crate::types::{NetworkId, NodeId};

pub mod reactor_engine;

pub use reactor_engine::GatewayReactor;

/// Per-(source, destination) forwarding counters of one gateway.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StreamCounters {
    /// Complete messages relayed for this pair.
    pub messages: u64,
    /// Payload fragment bytes relayed (control packets excluded).
    pub bytes: u64,
    /// Payload fragments relayed.
    pub fragments: u64,
    /// Pipeline pushes that found the bounded queue full.
    pub stalls: u64,
    /// Fragment handoffs through the pipeline (0 at depth 1).
    pub buffer_switches: u64,
}

/// Live counters of one gateway's forwarding engine, updated by its
/// polling threads. Totals are cheap relaxed atomics; per-stream counters
/// live behind a mutex. Read them after the session (or at any point for
/// monitoring).
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Complete messages relayed.
    pub messages: AtomicU64,
    /// Payload fragment bytes relayed (control packets excluded).
    pub fragment_bytes: AtomicU64,
    /// Payload fragments relayed.
    pub fragments: AtomicU64,
    /// Pipeline pushes that found the bounded queue full (backpressure).
    pub stalls: AtomicU64,
    /// Fragment handoffs through the pipeline (0 at depth 1).
    pub buffer_switches: AtomicU64,
    /// Credit grants returned upstream (one per retransmitted fragment of
    /// a flow-controlled stream).
    pub credits_granted: AtomicU64,
    /// Streams dropped mid-flight by a cancellation (either received from
    /// a neighbour hop or initiated here).
    pub cancelled: AtomicU64,
    /// Credit waits that hit their deadline on this gateway's outbound
    /// side (each one cancels its stream).
    pub credit_timeouts: AtomicU64,
    /// Non-fatal errors the engine degraded through instead of dying
    /// (failed sends, protocol violations on one conduit).
    pub errors: AtomicU64,
    /// Handoff acknowledgments sent back to multi-path stream origins
    /// (one per acked stream whose end packet this engine relayed).
    pub acks_sent: AtomicU64,
    /// Rendezvous RTS announcements (kind 12) relayed downstream, in
    /// stream order through the pipeline.
    pub rts_relayed: AtomicU64,
    /// Rendezvous CTS whole-window grants sent back upstream (one per
    /// accepted RTS).
    pub cts_sent: AtomicU64,
    /// Unavoidable relay staging copies performed on the receive stage.
    pub copies_recv: AtomicU64,
    /// Unavoidable relay staging copies deferred to the flush stage
    /// (the copy-placement scheduler found it idle).
    pub copies_flush: AtomicU64,
    /// Staging copies that landed on a stage that was idle at placement
    /// time — the E2 overlap win, measured.
    pub copy_idle_hits: AtomicU64,
    /// Nanoseconds the receive stages spent busy (telemetry-gated).
    pub recv_busy_ns: AtomicU64,
    /// Nanoseconds the flush stages spent busy (telemetry-gated).
    pub flush_busy_ns: AtomicU64,
    /// Flush stages currently mid-drain — the live busy signal the
    /// copy-placement scheduler reads at receive time.
    flush_active: AtomicU64,
    /// Dedicated OS threads this engine spawned: polling + forwarding
    /// threads for [`EngineKind::Threaded`], 0 for
    /// [`EngineKind::Reactor`] (its tasks ride the node-wide worker
    /// pool) — the per-gateway slice of the session thread budget.
    pub threads_spawned: AtomicU64,
    /// Packet bytes currently resident in this engine (received but not
    /// yet retransmitted or dropped) and their high-water mark — the
    /// occupancy the credit window bounds.
    pub held: Gauge,
    /// Streams currently open in the engine's demultiplexing table
    /// (header accepted, end/cancel not yet relayed).
    open_streams: AtomicI64,
    per_stream: Mutex<BTreeMap<(NodeId, NodeId), StreamCounters>>,
    delta_prev: Mutex<[DeltaPrev; DELTA_CURSORS]>,
}

/// Independent windowed readers of one [`GatewayStats`]. Each cursor
/// keeps its own baseline, so the multi-path selector's refresh, the
/// telemetry sampler, and the health watchdog all see complete disjoint
/// windows instead of stealing deltas from each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaCursor {
    /// The multi-path selector's refresh windows
    /// ([`GatewayStats::delta_since_last`]).
    Selector = 0,
    /// The telemetry plane's sampling windows.
    Metrics = 1,
    /// The health watchdog's evaluation windows.
    Watchdog = 2,
    /// The self-tuning controller's evaluation windows.
    Controller = 3,
}

/// Number of [`DeltaCursor`] variants (baseline array length).
const DELTA_CURSORS: usize = 4;

/// Baseline of one cursor's previous windowed snapshot.
#[derive(Debug, Default)]
struct DeltaPrev {
    at_ns: u64,
    totals: GatewayTotals,
    per_stream: BTreeMap<(NodeId, NodeId), StreamCounters>,
}

/// Activity of one forwarded (source, destination) pair since the
/// previous snapshot — deltas over the window, not lifetime counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkDelta {
    /// Payload fragment bytes relayed in the window.
    pub bytes: u64,
    /// Payload fragments relayed in the window.
    pub fragments: u64,
    /// Backpressure stalls hit in the window.
    pub stalls: u64,
    /// Pipeline buffer switches in the window.
    pub switches: u64,
}

/// Windowed view of one gateway between two successive
/// [`GatewayStats::delta_since_last`] calls: per-link deltas plus the
/// derived rates route selection feeds on. Unlike [`GatewayTotals`] every
/// count here covers only the elapsed window, so a long-running session
/// sees *current* load, not its lifetime average.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct GatewayDelta {
    /// Nanoseconds covered by this window (0 on the first call).
    pub interval_ns: u64,
    /// Complete messages relayed in the window.
    pub messages: u64,
    /// Credit waits that hit their deadline in the window.
    pub credit_timeouts: u64,
    /// Payload fragments relayed in the window.
    pub fragments: u64,
    /// Payload fragment bytes relayed in the window.
    pub bytes: u64,
    /// Backpressure stalls in the window.
    pub stalls: u64,
    /// Payload throughput over the window in bytes per second (0 if the
    /// window is empty).
    pub bytes_per_sec: f64,
    /// Stalls per relayed fragment in the window — the congestion signal
    /// (0 when idle, approaches 1 when every handoff blocks).
    pub stall_rate: f64,
    /// Packet bytes resident in the engine at snapshot time.
    pub occupancy_bytes: i64,
    /// Per-(source, destination) deltas, sorted by pair.
    pub per_link: Vec<((NodeId, NodeId), LinkDelta)>,
}

/// A point-in-time copy of a gateway's total counters, safe to take
/// while the engine is running (each field is individually consistent
/// and monotone) — the mid-run snapshot API that flow-control decisions
/// and monitoring need.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GatewayTotals {
    /// Complete messages relayed.
    pub messages: u64,
    /// Payload fragments relayed.
    pub fragments: u64,
    /// Payload fragment bytes relayed.
    pub fragment_bytes: u64,
    /// Pipeline pushes that found the bounded queue full.
    pub stalls: u64,
    /// Fragment handoffs through the pipeline.
    pub buffer_switches: u64,
    /// Credit grants returned upstream.
    pub credits_granted: u64,
    /// Streams dropped mid-flight by a cancellation.
    pub cancelled: u64,
    /// Credit waits that hit their deadline here.
    pub credit_timeouts: u64,
    /// Non-fatal errors degraded through.
    pub errors: u64,
    /// Handoff acknowledgments sent back to stream origins.
    pub acks_sent: u64,
    /// Rendezvous RTS announcements relayed downstream.
    pub rts_relayed: u64,
    /// Rendezvous CTS whole-window grants sent upstream.
    pub cts_sent: u64,
    /// Relay staging copies performed on the receive stage.
    pub copies_recv: u64,
    /// Relay staging copies deferred to the flush stage.
    pub copies_flush: u64,
    /// Staging copies placed on a stage that was idle at placement time.
    pub copy_idle_hits: u64,
    /// Dedicated OS threads the engine spawned (0 in reactor mode).
    pub threads_spawned: u64,
    /// Packet bytes resident in the engine at snapshot time.
    pub held_bytes: i64,
    /// High-water mark of resident packet bytes.
    pub peak_held_bytes: i64,
}

impl GatewayStats {
    /// Snapshot the totals as (messages, fragments, fragment_bytes).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.fragments.load(Ordering::Relaxed),
            self.fragment_bytes.load(Ordering::Relaxed),
        )
    }

    /// Cheap mid-run snapshot of every total (relaxed loads, no locks).
    pub fn totals(&self) -> GatewayTotals {
        GatewayTotals {
            messages: self.messages.load(Ordering::Relaxed),
            fragments: self.fragments.load(Ordering::Relaxed),
            fragment_bytes: self.fragment_bytes.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            buffer_switches: self.buffer_switches.load(Ordering::Relaxed),
            credits_granted: self.credits_granted.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            credit_timeouts: self.credit_timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            rts_relayed: self.rts_relayed.load(Ordering::Relaxed),
            cts_sent: self.cts_sent.load(Ordering::Relaxed),
            copies_recv: self.copies_recv.load(Ordering::Relaxed),
            copies_flush: self.copies_flush.load(Ordering::Relaxed),
            copy_idle_hits: self.copy_idle_hits.load(Ordering::Relaxed),
            threads_spawned: self.threads_spawned.load(Ordering::Relaxed),
            held_bytes: self.held.current(),
            peak_held_bytes: self.held.peak(),
        }
    }

    /// Windowed snapshot: everything that happened since the *previous*
    /// `delta_since_last` call (or engine start, on the first call), with
    /// rates derived from the caller-supplied clock. The baseline advances
    /// on every call, so periodic callers see disjoint windows. Counter
    /// reads are relaxed; a window may misattribute an in-flight update by
    /// one tick, which is harmless for load estimation.
    pub fn delta_since_last(&self, now_ns: u64) -> GatewayDelta {
        self.delta_for(DeltaCursor::Selector, now_ns)
    }

    /// [`GatewayStats::delta_since_last`] on an explicit cursor: each
    /// [`DeltaCursor`] advances its own baseline, so concurrent periodic
    /// readers (route selection, sampling, health checks) each see every
    /// window exactly once.
    pub fn delta_for(&self, cursor: DeltaCursor, now_ns: u64) -> GatewayDelta {
        let totals = self.totals();
        let per: BTreeMap<(NodeId, NodeId), StreamCounters> = self
            .per_stream
            .lock()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        let mut prevs = self.delta_prev.lock();
        let prev = &mut prevs[cursor as usize];
        let interval_ns = now_ns.saturating_sub(prev.at_ns);
        let messages = totals.messages.saturating_sub(prev.totals.messages);
        let credit_timeouts = totals
            .credit_timeouts
            .saturating_sub(prev.totals.credit_timeouts);
        let fragments = totals.fragments.saturating_sub(prev.totals.fragments);
        let bytes = totals
            .fragment_bytes
            .saturating_sub(prev.totals.fragment_bytes);
        let stalls = totals.stalls.saturating_sub(prev.totals.stalls);
        let per_link: Vec<((NodeId, NodeId), LinkDelta)> = per
            .iter()
            .map(|(&pair, &c)| {
                let p = prev.per_stream.get(&pair).copied().unwrap_or_default();
                (
                    pair,
                    LinkDelta {
                        bytes: c.bytes.saturating_sub(p.bytes),
                        fragments: c.fragments.saturating_sub(p.fragments),
                        stalls: c.stalls.saturating_sub(p.stalls),
                        switches: c.buffer_switches.saturating_sub(p.buffer_switches),
                    },
                )
            })
            .collect();
        let secs = interval_ns as f64 / 1e9;
        let bytes_per_sec = if secs > 0.0 { bytes as f64 / secs } else { 0.0 };
        let stall_rate = if fragments > 0 {
            stalls as f64 / fragments as f64
        } else {
            0.0
        };
        *prev = DeltaPrev {
            at_ns: now_ns,
            totals,
            per_stream: per,
        };
        GatewayDelta {
            interval_ns,
            messages,
            credit_timeouts,
            fragments,
            bytes,
            stalls,
            bytes_per_sec,
            stall_rate,
            occupancy_bytes: totals.held_bytes,
            per_link,
        }
    }

    /// Streams currently open in the engine (accepted header, end or
    /// cancel not yet relayed) — the live companion of the windowed
    /// counters, read by the health watchdog's stalled-stream detector.
    pub fn open_streams(&self) -> i64 {
        self.open_streams.load(Ordering::Relaxed)
    }

    /// Per-(source, destination) counters, sorted by pair.
    pub fn per_stream(&self) -> Vec<((NodeId, NodeId), StreamCounters)> {
        self.per_stream
            .lock()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    fn with_pair(&self, pair: (NodeId, NodeId), f: impl FnOnce(&mut StreamCounters)) {
        f(self.per_stream.lock().entry(pair).or_default())
    }

    fn on_header(&self, pair: (NodeId, NodeId)) {
        self.open_streams.fetch_add(1, Ordering::Relaxed);
        self.with_pair(pair, |_| {});
    }

    fn on_frag(&self, pair: (NodeId, NodeId), bytes: u64) {
        self.fragments.fetch_add(1, Ordering::Relaxed);
        self.fragment_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.with_pair(pair, |c| {
            c.fragments += 1;
            c.bytes += bytes;
        });
    }

    fn on_end(&self, pair: (NodeId, NodeId)) {
        self.open_streams.fetch_sub(1, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.with_pair(pair, |c| c.messages += 1);
    }

    fn on_stall(&self, pair: (NodeId, NodeId)) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
        self.with_pair(pair, |c| c.stalls += 1);
    }

    fn on_switch(&self, pair: (NodeId, NodeId)) {
        self.buffer_switches.fetch_add(1, Ordering::Relaxed);
        self.with_pair(pair, |c| c.buffer_switches += 1);
    }

    fn on_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn on_cancelled(&self) {
        self.open_streams.fetch_sub(1, Ordering::Relaxed);
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }
}

/// Which execution core drives a gateway's forwarding engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One polling thread per inbound network plus one forwarding thread
    /// per (in, out) network pair — the paper-faithful baseline, kept as
    /// the ablation reference.
    Threaded,
    /// The same state machines as poll-driven tasks on a per-gateway-node
    /// reactor worker pool ([`reactor_engine`]): a fixed thread budget no
    /// matter how many channels and networks the node bridges.
    Reactor,
}

impl EngineKind {
    /// The engine named by the `MAD_ENGINE` environment variable
    /// (`"reactor"`, case-insensitive, selects [`EngineKind::Reactor`];
    /// anything else, or unset, the threaded baseline). This feeds
    /// [`GatewayConfig::default`], so existing tests and benches run in
    /// reactor mode without code changes — how CI exercises both engines
    /// over one test suite.
    pub fn from_env() -> Self {
        match std::env::var("MAD_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("reactor") => EngineKind::Reactor,
            _ => EngineKind::Threaded,
        }
    }
}

/// Tuning knobs of a gateway's forwarding engine.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Number of pipeline buffers per direction. `2` is the paper's
    /// double-buffering; `1` disables pipelining (the polling thread
    /// retransmits each packet itself before receiving the next).
    pub pipeline_depth: usize,
    /// Software cost charged per fragment handoff (the paper's ~40 µs
    /// buffer-switch overhead). Only the simulated runtime turns this into
    /// time.
    pub switch_overhead_ns: u64,
    /// Use the zero-copy buffer handoff matrix; `false` forces the naive
    /// extra-copy path (ablation A2).
    pub zero_copy: bool,
    /// Pin the polling thread to one inbound peer until every stream it
    /// opened has ended — the pre-fragment-scheduling message-at-a-time
    /// discipline, kept as the head-of-line-blocking ablation baseline.
    pub exclusive_streams: bool,
    /// Per-stream credit window in fragments. `None` disables flow
    /// control (unbounded gateway occupancy, the pre-credit behaviour).
    /// Every node of the virtual channel must agree on this value — both
    /// ends of a conduit derive the same window from configuration, so no
    /// handshake is needed.
    pub credit_window: Option<u32>,
    /// Deadline for any single credit wait (sender side and gateway
    /// outbound side). A stream that makes no progress within it is
    /// cancelled with [`MadError::CreditTimeout`].
    pub credit_timeout_ns: u64,
    /// Deadline for the teardown drain: once a stop is requested, a
    /// polling thread waits at most this long for its in-flight streams
    /// to end before abandoning them (a fault may have killed a source
    /// that will never send its end packet).
    pub drain_timeout_ns: u64,
    /// Maximum packets a forwarding thread coalesces into one batch frame
    /// per outbound send. `1` (the default) transmits packet-at-a-time —
    /// exactly the pre-batching behaviour. With a backlogged pipeline and
    /// `max_batch ≥ 2`, queued packets bound for the same conduit ride one
    /// wire send (one per-send overhead for the whole train), which is
    /// where slow outbound networks with high fixed send costs win. A
    /// frame never exceeds the outgoing driver's preferred packet size,
    /// so route-MTU-sized bulk fragments are still sent singly and keep
    /// their zero-copy static path. Batching needs `pipeline_depth ≥ 2`
    /// (the queue is the coalescing buffer); the depth-1 inline path
    /// ignores this knob.
    pub max_batch: usize,
    /// Execution core: dedicated threads per direction, or poll-driven
    /// tasks on the node's shared reactor. Defaults to
    /// [`EngineKind::from_env`], so `MAD_ENGINE=reactor` flips every
    /// default-constructed config.
    pub engine: EngineKind,
    /// Worker threads of the per-gateway-node reactor (only read in
    /// [`EngineKind::Reactor`] mode; the first reactor-mode virtual
    /// channel of a node sizes its pool). Two workers keep receive and
    /// retransmit overlapped — the reactor's double-buffering analog.
    pub reactor_workers: usize,
    /// Protocol-switch crossover in bytes: blocks at least this large
    /// run the kind-12 RTS/CTS rendezvous handshake instead of the eager
    /// path. `0` (the default) keeps every block eager — the pre-switch
    /// wire behaviour. Requires `credit_window` (the handshake rides the
    /// credit plane); ignored without it. Every node of the virtual
    /// channel reads the same configured value, and a controller retunes
    /// it online when one governs the channel.
    pub rendezvous_threshold: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            pipeline_depth: 2,
            switch_overhead_ns: 0,
            zero_copy: true,
            exclusive_streams: false,
            credit_window: None,
            credit_timeout_ns: 500_000_000,
            drain_timeout_ns: 2_000_000_000,
            max_batch: 1,
            engine: EngineKind::from_env(),
            reactor_workers: 2,
            rendezvous_threshold: 0,
        }
    }
}

/// Session-wide shutdown coordinator shared by every gateway engine.
///
/// [`GatewayStop::request_stop`] alone does not stop the engines: a
/// polling thread only gives up once the whole session is quiescent — the
/// global count of accepted-but-not-fully-retransmitted streams is zero,
/// no engine is mid-relay, and no registered inbound conduit anywhere
/// still holds undelivered packets. The last clause is what makes the
/// drain multi-hop safe: a downstream gateway whose own pipeline is
/// momentarily idle must keep serving while an upstream gateway still has
/// backlog queued for it, or the backlog dies with the downstream
/// engine's conduits. [`GatewayStop::force`] (used when an application
/// thread panicked and may never finish a stream) waives the drain.
#[derive(Default)]
pub struct GatewayStop {
    stop: AtomicBool,
    forced: AtomicBool,
    open: AtomicU64,
    /// Packets popped from an inbound conduit but not yet demultiplexed
    /// (counted into `open`, forwarded, or consumed): the hidden station
    /// between the conduit scan and the stream accounting.
    busy: AtomicU64,
    /// Bumped on every station transition of an in-flight packet
    /// (conduit → relay → open stream → retransmitted). The quiescence
    /// check reads it seqlock-style around its scan: an unchanged count
    /// proves nothing moved between the stations while they were being
    /// inspected, so an all-empty scan cannot have raced a packet hop.
    transitions: AtomicU64,
    /// Inbound channels of every gateway engine in the session. Dead
    /// weak refs (engine exited, conduits dropped) are skipped.
    sources: Mutex<Vec<std::sync::Weak<Channel>>>,
    wakers: Mutex<Vec<Arc<dyn RtEvent>>>,
}

impl std::fmt::Debug for GatewayStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayStop")
            .field("stop", &self.stop.load(Ordering::Acquire))
            .field("forced", &self.forced.load(Ordering::Acquire))
            .field("open", &self.open.load(Ordering::Acquire))
            .finish()
    }
}

impl GatewayStop {
    /// A fresh coordinator (one per session).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask the engines to stop once all in-flight streams are drained.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.wake_all();
    }

    /// Stop without waiting for open streams (some may never end because
    /// an application thread died mid-message).
    pub fn force(&self) {
        self.forced.store(true, Ordering::Release);
        self.wake_all();
    }

    /// True once a stop has been requested (the drain may still be going).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn should_stop(&self) -> bool {
        if !self.stop.load(Ordering::Acquire) {
            return false;
        }
        if self.forced.load(Ordering::Acquire) {
            return true;
        }
        // Session-wide quiescence. A packet in flight is always visible at
        // exactly one station: an inbound conduit queue, the relay bracket
        // (`busy`), or an open stream (`open`, held until the end packet
        // is retransmitted). Scan them all, then confirm via the
        // transition count that no packet hopped stations mid-scan — if
        // one did, the scan may have looked at both its old and new
        // station while it was in neither, so the result is void.
        let before = self.transitions.load(Ordering::Acquire);
        if self.open.load(Ordering::Acquire) != 0 || self.busy.load(Ordering::Acquire) != 0 {
            return false;
        }
        let pending = self
            .sources
            .lock()
            .iter()
            .any(|w| w.upgrade().is_some_and(|ch| ch.has_pending()));
        if pending {
            return false;
        }
        self.transitions.load(Ordering::Acquire) == before
    }

    fn opened(&self) {
        self.open.fetch_add(1, Ordering::AcqRel);
        self.transitions.fetch_add(1, Ordering::AcqRel);
    }

    fn end_forwarded(&self) {
        self.transitions.fetch_add(1, Ordering::AcqRel);
        if self.open.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.wake_all();
        }
    }

    fn abandon(&self, n: u64) {
        if n > 0 {
            self.transitions.fetch_add(1, Ordering::AcqRel);
            self.open.fetch_sub(n, Ordering::AcqRel);
            self.wake_all();
        }
    }

    fn register_waker(&self, ev: Arc<dyn RtEvent>) {
        self.wakers.lock().push(ev);
    }

    fn register_source(&self, ch: std::sync::Weak<Channel>) {
        self.sources.lock().push(ch);
    }

    fn wake_all(&self) {
        for ev in self.wakers.lock().iter() {
            ev.bump();
        }
    }
}

/// Per-engine liveness accounting: tracks how many streams this engine has
/// accepted but not fully retransmitted, so the last thread out (normal
/// exit or unwind) can release them from the session-wide drain count.
struct EngineLive {
    threads: AtomicUsize,
    local_open: AtomicI64,
    stopctl: Arc<GatewayStop>,
}

impl EngineLive {
    fn opened(&self) {
        self.local_open.fetch_add(1, Ordering::AcqRel);
        self.stopctl.opened();
    }

    fn stream_done(&self) {
        self.local_open.fetch_sub(1, Ordering::AcqRel);
        self.stopctl.end_forwarded();
    }
}

/// Armed at the top of every engine thread; its `Drop` runs even on panic,
/// so a dying engine cannot leave the rest of the session waiting on
/// streams it will never finish.
struct ThreadExitGuard {
    live: Arc<EngineLive>,
}

impl Drop for ThreadExitGuard {
    fn drop(&mut self) {
        if self.live.threads.fetch_sub(1, Ordering::AcqRel) == 1 {
            let leaked = self.live.local_open.swap(0, Ordering::AcqRel);
            self.live.stopctl.abandon(leaked.max(0) as u64);
        }
    }
}

/// RAII bracket around one receive + relay turn. While held, the packet
/// being moved is at the "hidden" station: already popped from its conduit
/// (invisible to [`Channel::has_pending`]) but not yet counted into the
/// open-stream drain count — without this bracket the quiescence check in
/// [`GatewayStop::should_stop`] could pass right through the gap and stop
/// a peer engine that the packet is about to be forwarded to.
struct BusyGuard<'a>(&'a GatewayStop);

impl<'a> BusyGuard<'a> {
    fn enter(stopctl: &'a GatewayStop) -> Self {
        stopctl.busy.fetch_add(1, Ordering::AcqRel);
        stopctl.transitions.fetch_add(1, Ordering::AcqRel);
        BusyGuard(stopctl)
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.transitions.fetch_add(1, Ordering::AcqRel);
        if self.0.busy.fetch_sub(1, Ordering::AcqRel) == 1 && self.0.stop_requested() {
            self.0.wake_all();
        }
    }
}

/// RAII bracket around one pipeline stage's busy period. The flush-side
/// bracket maintains the live [`GatewayStats::flush_active`] count the
/// copy-placement scheduler reads at receive time; both sides feed the
/// cumulative per-stage busy clocks on the `rt:` trace when timing is on
/// (telemetry or tracing enabled — the clock reads stay off the bare hot
/// path).
struct StageBusy<'a> {
    active: Option<&'a AtomicU64>,
    clock: &'a AtomicU64,
    runtime: &'a dyn Runtime,
    start_ns: u64,
    timed: bool,
}

impl<'a> StageBusy<'a> {
    fn enter(
        active: Option<&'a AtomicU64>,
        clock: &'a AtomicU64,
        runtime: &'a dyn Runtime,
        timed: bool,
    ) -> Self {
        if let Some(a) = active {
            a.fetch_add(1, Ordering::Relaxed);
        }
        StageBusy {
            active,
            clock,
            runtime,
            start_ns: if timed { runtime.now_nanos() } else { 0 },
            timed,
        }
    }
}

impl Drop for StageBusy<'_> {
    fn drop(&mut self) {
        if self.timed {
            self.clock.fetch_add(
                self.runtime.now_nanos().saturating_sub(self.start_ns),
                Ordering::Relaxed,
            );
        }
        if let Some(a) = self.active {
            a.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// A buffer traveling through the gateway pipeline: one wire packet,
/// forwarded verbatim.
enum FwdBuf {
    /// The incoming driver's own buffer (outgoing driver is dynamic),
    /// attached to the session pool so consuming it recycles the memory.
    Owned(PooledBuf),
    /// An outgoing-driver static buffer, filled by the receive.
    Static(StaticBuf),
}

impl FwdBuf {
    fn bytes(&self) -> &[u8] {
        match self {
            FwdBuf::Owned(v) => v,
            FwdBuf::Static(sb) => sb.as_slice(),
        }
    }
}

/// One self-contained pipeline slot: a packet plus where it goes. Items of
/// different streams interleave freely in the queue.
struct FwdItem {
    to: NodeId,
    last_hop: bool,
    buf: FwdBuf,
    /// The stream the packet belongs to.
    tag: StreamTag,
    /// True for a stream's end-equivalent packet (real end or a cancel):
    /// consuming it — retransmitted or dropped — releases the stream from
    /// the session-wide drain count and closes its ledger account.
    end_of_stream: bool,
    /// Packet bytes counted in the held-bytes gauge (fragments only; 0
    /// for control packets).
    held_bytes: usize,
    /// When the polling side received the packet (engine clock), or 0
    /// when telemetry is off or the packet is not a payload fragment —
    /// the start of the per-fragment forward-latency measurement.
    recv_ns: u64,
    /// Consume one outbound credit before retransmitting (flow-controlled
    /// stream on a non-final hop).
    consume: bool,
    /// Return one credit on this channel to this peer after a successful
    /// retransmission (the upstream side of a flow-controlled fragment).
    grant: Option<(Arc<Channel>, NodeId)>,
    /// Send a handoff ack on this channel to this peer after the end
    /// packet is successfully retransmitted (an acked stream whose origin
    /// is our upstream neighbour). Never set together with a failed
    /// retransmission — on failure the origin's ack deadline fires
    /// instead and drives its failover.
    ack: Option<(Arc<Channel>, NodeId)>,
    /// The copy-placement scheduler deferred this packet's unavoidable
    /// staging copy: `buf` is the raw received buffer, and the flush
    /// stage restages it into this landing before transmitting.
    restage: Option<Landing>,
}

/// Where the polling thread pushes pipeline items.
enum Sink {
    /// Pipelined: a bounded queue drained by a forwarding thread.
    Queue(RtSender<FwdItem>, OutPath),
    /// Depth-1: the polling thread retransmits synchronously.
    Inline(OutPath),
}

impl Sink {
    fn path(&self) -> &OutPath {
        match self {
            Sink::Queue(_, p) | Sink::Inline(p) => p,
        }
    }
}

/// Where the demultiplexer hands accepted packets. `relay_packet` and the
/// cancellation helpers are generic over this, so the threaded engine
/// (bounded queues + forwarding threads) and the reactor engine
/// (task-local per-net queues flushed by non-blocking polls) share every
/// byte of routing, credit, and cancellation logic — the reason the two
/// engines forward byte-identical streams.
trait ItemSink {
    /// Does this gateway bridge onto `net`?
    fn bridges(&self, net: NetworkId) -> bool;
    /// Accept one packet for the stream's outbound network. Failing with
    /// [`MadError::Disconnected`] shuts the inbound side down (the
    /// outbound consumer is gone); the implementation must account the
    /// item (via [`drop_item`]) before failing.
    fn accept(
        &mut self,
        stream: &InStream,
        item: FwdItem,
        is_frag: bool,
        shared: &FwdShared,
    ) -> Result<()>;
}

/// The threaded engine's sink set: one [`Sink`] per outbound network,
/// dispatching to forwarding threads (or inline at depth 1).
struct ThreadedSinks(BTreeMap<NetworkId, Sink>);

impl ItemSink for ThreadedSinks {
    fn bridges(&self, net: NetworkId) -> bool {
        self.0.contains_key(&net)
    }

    fn accept(
        &mut self,
        stream: &InStream,
        item: FwdItem,
        is_frag: bool,
        shared: &FwdShared,
    ) -> Result<()> {
        dispatch(&self.0[&stream.out_net], stream, item, is_frag, shared)
    }
}

/// The outgoing channels of one network direction.
#[derive(Clone)]
struct OutPath {
    regular: Arc<Channel>,
    special: Arc<Channel>,
}

impl OutPath {
    fn channel(&self, last_hop: bool) -> &Arc<Channel> {
        if last_hop {
            &self.regular
        } else {
            &self.special
        }
    }
}

/// State shared by everything that consumes pipeline items (forwarding
/// threads and the depth-1 inline path). Cloneable so the reactor
/// engine's receive and flush tasks can each carry one.
#[derive(Clone)]
struct FwdShared {
    stats: Arc<GatewayStats>,
    live: Arc<EngineLive>,
    ledger: Arc<CreditLedger>,
    runtime: Arc<dyn Runtime>,
    credit_timeout_ns: u64,
    tracer: Tracer,
    /// Hot-path telemetry handles; `None` compiles the recording out of
    /// the forwarding path entirely (the metrics-off default).
    metrics: Option<GwMetrics>,
    /// The node's membership plane; kind-11 member packets relayed or
    /// terminated here are handed to it (the membership-off default is
    /// `None`, which drops them like any unknown control packet).
    member: Option<Arc<MembershipPlane>>,
    /// The channel's live operating point; when present the self-grant
    /// window and the batching caps are read from it per use instead of
    /// from the static config.
    tuning: Option<Arc<Tuning>>,
}

/// How a polling thread lands incoming packets (fixed per inbound network,
/// derived from the outgoing drivers it can feed).
#[derive(Clone, Copy)]
enum Landing {
    /// Take the incoming driver's own buffer (some outgoing driver is
    /// dynamic, or the outgoing static drivers disagree on ownership).
    Owned,
    /// Receive into an oversized static buffer of the (single) outgoing
    /// driver and trim to the packet length.
    Static(&'static str),
    /// Naive extra-copy path (`zero_copy = false`).
    Tmp,
}

/// Running gateway engine; joining waits for clean shutdown (which happens
/// when every inbound special-channel peer has disconnected, or the
/// session's [`GatewayStop`] fires with no streams left to drain, or the
/// drain deadline expires on stuck streams).
pub struct GatewayHandles {
    threads: Vec<JoinHandle<()>>,
    /// Reactor mode: completion latch decremented as each inbound task is
    /// dropped (finished, panicked, or drained at shutdown). Task panics
    /// are not resumed here — the session surfaces them from
    /// [`GatewayReactor::shutdown_and_join`] after every engine is down.
    latch: Option<Arc<reactor_engine::TaskLatch>>,
    stats: Arc<GatewayStats>,
}

impl GatewayHandles {
    /// Wait for all gateway threads (or reactor tasks) to finish.
    pub fn join(self) {
        for t in self.threads {
            if let Err(e) = t.join() {
                std::panic::resume_unwind(e);
            }
        }
        if let Some(latch) = self.latch {
            latch.wait();
        }
    }

    /// The engine's live counters.
    pub fn stats(&self) -> &Arc<GatewayStats> {
        &self.stats
    }
}

/// Spawn the forwarding engine of one gateway node for one virtual channel.
///
/// `regular`/`special` hold this node's two real channels per network;
/// `routes` is the gateway's own routing table over the virtual channel;
/// `ledger` is the node's shared credit ledger (used even with flow
/// control off, as the cancellation bus). In [`EngineKind::Reactor`] mode
/// `reactor` must name the node's shared reactor (the session builds one
/// per gateway node); in threaded mode it is ignored.
#[allow(clippy::too_many_arguments)] // a one-caller bootstrap function
pub fn spawn_gateway(
    rank: NodeId,
    vc_name: &str,
    regular: BTreeMap<NetworkId, Arc<Channel>>,
    special: BTreeMap<NetworkId, Arc<Channel>>,
    routes: RouteTable,
    cfg: GatewayConfig,
    runtime: Arc<dyn Runtime>,
    stopctl: Arc<GatewayStop>,
    ledger: Arc<CreditLedger>,
    reactor: Option<&Arc<GatewayReactor>>,
    metrics: Option<Arc<crate::metrics_plane::MetricsPlane>>,
    member: Option<Arc<MembershipPlane>>,
    tuning: Option<Arc<Tuning>>,
) -> GatewayHandles {
    assert!(cfg.pipeline_depth >= 1, "pipeline depth must be at least 1");
    let metrics = metrics.map(GwMetrics::new);
    if cfg.engine == EngineKind::Reactor {
        let Some(reactor) = reactor else {
            panic!("EngineKind::Reactor requires the node's GatewayReactor");
        };
        return reactor_engine::spawn_reactor_gateway(
            rank, vc_name, regular, special, routes, cfg, runtime, stopctl, ledger, reactor,
            metrics, member, tuning,
        );
    }
    let nets: Vec<NetworkId> = special.keys().copied().collect();
    let mut threads = Vec::new();
    let routes = Arc::new(routes);
    let stats = Arc::new(GatewayStats::default());
    let fwd_per_net = if cfg.pipeline_depth == 1 {
        0
    } else {
        nets.len() - 1
    };
    let live = Arc::new(EngineLive {
        threads: AtomicUsize::new(nets.len() * (1 + fwd_per_net)),
        local_open: AtomicI64::new(0),
        stopctl: stopctl.clone(),
    });
    stats
        .threads_spawned
        .store((nets.len() * (1 + fwd_per_net)) as u64, Ordering::Relaxed);

    // One polling thread per inbound network; per (in, out) ordered pair a
    // forwarding thread when pipelining is on.
    for &net_in in &nets {
        let mut sinks: BTreeMap<NetworkId, Sink> = BTreeMap::new();
        for &net_out in &nets {
            if net_out == net_in {
                continue;
            }
            let out_path = OutPath {
                regular: regular[&net_out].clone(),
                special: special[&net_out].clone(),
            };
            if cfg.pipeline_depth == 1 {
                sinks.insert(net_out, Sink::Inline(out_path));
            } else {
                let (tx, rx) = RtQueue::<FwdItem>::with_capacity(&*runtime, cfg.pipeline_depth - 1);
                sinks.insert(net_out, Sink::Queue(tx, out_path.clone()));
                let name = format!("gw{}-{}-fwd-{}-{}", rank.0, vc_name, net_in, net_out);
                let shared = FwdShared {
                    stats: stats.clone(),
                    live: live.clone(),
                    ledger: ledger.clone(),
                    runtime: runtime.clone(),
                    credit_timeout_ns: cfg.credit_timeout_ns,
                    tracer: runtime.tracer(),
                    metrics: metrics.clone(),
                    member: member.clone(),
                    tuning: tuning.clone(),
                };
                let max_batch = cfg.max_batch;
                threads.push(runtime.spawn(
                    name,
                    Box::new(move || forwarding_thread(rx, out_path, shared, max_batch)),
                ));
            }
        }
        let in_channel = special[&net_in].clone();
        stopctl.register_waker(in_channel.recv_event().clone());
        stopctl.register_source(Arc::downgrade(&in_channel));
        let routes = routes.clone();
        let rt = runtime.clone();
        let stats = stats.clone();
        let live = live.clone();
        let ledger = ledger.clone();
        let metrics = metrics.clone();
        let member = member.clone();
        let tuning = tuning.clone();
        let name = format!("gw{}-{}-in-{}", rank.0, vc_name, net_in);
        threads.push(runtime.spawn(
            name,
            Box::new(move || {
                polling_thread(
                    rank,
                    in_channel,
                    ThreadedSinks(sinks),
                    routes,
                    cfg,
                    rt,
                    stats,
                    live,
                    ledger,
                    metrics,
                    member,
                    tuning,
                )
            }),
        ));
    }
    GatewayHandles {
        threads,
        latch: None,
        stats,
    }
}

/// Routing decision of one accepted stream, kept while it is in flight.
struct InStream {
    out_net: NetworkId,
    to: NodeId,
    last_hop: bool,
    pair: (NodeId, NodeId),
    tag: StreamTag,
    /// The inbound peer the stream arrives from (cancellations go back
    /// this way).
    upstream: NodeId,
    /// The fragment MTU its header announced — the landing-buffer size is
    /// recomputed from the *open* streams' MTUs, so one bulk transfer no
    /// longer pins the static landing buffer at its high-water size
    /// forever.
    mtu: u32,
    /// The stream's header requested a handoff acknowledgment and this
    /// engine is its first hop (the inbound peer *is* the origin): once
    /// the end packet is retransmitted, send an ack back upstream.
    ack: bool,
    /// Per-fragment upstream credit grants still suppressed by an
    /// accepted rendezvous block: the whole-window CTS sent upstream
    /// prepaid exactly this many fragments, so their individual grants
    /// must not be returned on top of it. `Cell` because the polling
    /// side decrements it per fragment while holding only `&InStream`.
    rendezvous_pending: Cell<u64>,
}

/// Size of the static/naive landing buffer, derived from the currently
/// open streams (headers always precede fragments on a conduit, so every
/// receivable packet fits). Recomputed on stream open *and* close: the
/// old monotone high-water grow leaked the largest MTU ever seen across
/// the rest of the session. With batching on, upstream gateways may send
/// whole trains, bounded by their outgoing driver's preferred packet size
/// — which is this thread's inbound driver.
fn landing_size(
    streams: &BTreeMap<StreamKey, InStream>,
    max_batch: usize,
    caps: &crate::conduit::DriverCaps,
) -> usize {
    // Floor and per-stream sizing share `gtm::landing_size_for` with the
    // endpoint assembler's rendezvous pre-reservation, so both sides of
    // a handshake agree on the buffer class being reserved.
    let mut size = gtm::landing_size_for(0);
    for s in streams.values() {
        size = size.max(gtm::landing_size_for(s.mtu as usize));
    }
    if max_batch > 1 {
        size = size.max(caps.preferred_mtu.min(caps.max_packet));
    }
    size.min(caps.max_packet)
}

/// The polling thread of one inbound network: round-robins over the
/// connections of the special channel, relaying one self-described packet
/// per turn and demultiplexing stream state as it goes. Conduits are
/// bidirectional, so the same thread also receives the *returning* credit
/// grants and cancels of streams this gateway sends out on `net_in`, and
/// deposits them into the node's shared ledger.
#[allow(clippy::too_many_arguments)] // internal thread entry point
fn polling_thread(
    rank: NodeId,
    in_channel: Arc<Channel>,
    mut sinks: ThreadedSinks,
    routes: Arc<RouteTable>,
    cfg: GatewayConfig,
    runtime: Arc<dyn Runtime>,
    stats: Arc<GatewayStats>,
    live: Arc<EngineLive>,
    ledger: Arc<CreditLedger>,
    metrics: Option<GwMetrics>,
    member: Option<Arc<MembershipPlane>>,
    tuning: Option<Arc<Tuning>>,
) {
    let _exit = ThreadExitGuard { live: live.clone() };
    let landing = landing_policy(sinks.0.values().map(Sink::path), cfg);
    let stopctl = live.stopctl.clone();
    let tracer = runtime.tracer();
    // Copy placement can only defer to a real flush stage, and only when
    // the raw receive is itself copy-free (dynamic inbound driver — a
    // static inbound would pay the staging copy in `recv_owned` anyway).
    let can_defer = cfg.pipeline_depth > 1 && in_channel.caps().mode == BufferMode::Dynamic;
    let timed = metrics.is_some() || tracer.enabled();
    let shared = FwdShared {
        stats: stats.clone(),
        live,
        ledger,
        runtime: runtime.clone(),
        credit_timeout_ns: cfg.credit_timeout_ns,
        tracer: tracer.clone(),
        metrics,
        member,
        tuning,
    };
    // Streams currently crossing this inbound network.
    let mut streams: BTreeMap<StreamKey, InStream> = BTreeMap::new();
    // Streams cancelled here whose upstream may still be sending: their
    // late packets are dropped silently until the end/cancel arrives.
    let mut cancelled: BTreeSet<StreamKey> = BTreeSet::new();
    // Open-stream count per inbound peer (drives `exclusive_streams`).
    let mut open_from: BTreeMap<NodeId, u64> = BTreeMap::new();
    // Fair-scan cursor: the peer served last turn.
    let mut cursor = None;
    // Peer the thread is pinned to in `exclusive_streams` mode.
    let mut pinned: Option<NodeId> = None;
    // Largest possible packet, tracked from the MTUs of the *open*
    // streams (every control packet fits the floor; a fragment is always
    // preceded on its conduit by its stream's header).
    let in_caps = in_channel.caps();
    let mut max_pkt = landing_size(&streams, cfg.max_batch, &in_caps);
    // Deadline of the teardown drain, armed when a stop is requested while
    // streams are still open.
    let drain_deadline: Cell<Option<u64>> = Cell::new(None);

    loop {
        let wait_timeout = || -> Option<u64> {
            if !stopctl.stop_requested() {
                return None; // no stop in sight: wait indefinitely
            }
            let now = runtime.now_nanos();
            let deadline = match drain_deadline.get() {
                Some(d) => d,
                None => {
                    let d = now.saturating_add(cfg.drain_timeout_ns);
                    drain_deadline.set(Some(d));
                    d
                }
            };
            Some(deadline.saturating_sub(now))
        };
        let peer = match pinned {
            Some(p) => p,
            None => {
                match in_channel.select_ready_after(cursor, || stopctl.should_stop(), wait_timeout)
                {
                    Ok(p) => p,
                    // Inbound peers gone, session stopping, or the drain
                    // deadline expired on streams that will never end.
                    Err(_) => return,
                }
            }
        };
        cursor = Some(peer);
        let _busy = BusyGuard::enter(&stopctl);
        let _stage = StageBusy::enter(None, &stats.recv_busy_ns, &*runtime, timed);
        let (buf, restage) = {
            let _recv = trace_span!(tracer, "gw", "recv", "peer" = peer.0 as u64);
            match receive_packet(
                &in_channel,
                peer,
                landing,
                max_pkt,
                runtime.pool(),
                can_defer,
                &stats,
            ) {
                Ok(b) => b,
                Err(MadError::Disconnected) => return,
                Err(e) => {
                    // A broken receive loses the packet, and with it the
                    // framing of every stream on this conduit: degrade by
                    // cancelling this peer's streams, keep serving others.
                    stats.on_error();
                    trace_instant!(tracer, "gw", "recv-error", "peer" = peer.0 as u64);
                    let _ = e;
                    cancel_peer_streams(
                        peer,
                        &in_channel,
                        &mut sinks,
                        &mut streams,
                        &mut cancelled,
                        &mut open_from,
                        &shared,
                    );
                    max_pkt = landing_size(&streams, cfg.max_batch, &in_caps);
                    pinned = None;
                    continue;
                }
            }
        };
        in_channel.stats().on_recv(peer.0, buf.bytes().len());
        if restage.is_none() && !matches!(landing, Landing::Owned) {
            if let Some(m) = &shared.metrics {
                m.copy_bytes.record(buf.bytes().len() as u64);
            }
        }
        let _relay = trace_span!(tracer, "gw", "relay", "peer" = peer.0 as u64);
        match relay_packet(
            rank,
            peer,
            buf,
            restage,
            &in_channel,
            &mut sinks,
            &routes,
            cfg,
            &shared,
            &mut streams,
            &mut cancelled,
            &mut open_from,
            &mut max_pkt,
        ) {
            Ok(()) => {}
            Err(MadError::Disconnected) => return,
            Err(_) => {
                // A malformed or misrouted packet poisons only itself:
                // count it, drop it, keep forwarding everything else.
                stats.on_error();
                trace_instant!(tracer, "gw", "relay-error", "peer" = peer.0 as u64);
            }
        }
        if cfg.exclusive_streams {
            pinned = match open_from.get(&peer) {
                Some(&n) if n > 0 => Some(peer),
                _ => None,
            };
        }
    }
}

/// Demultiplex and forward one received packet. Generic over the sink so
/// both engine cores run the exact same demultiplexing logic.
#[allow(clippy::too_many_arguments)] // internal helper of the engine cores
fn relay_packet<S: ItemSink>(
    rank: NodeId,
    peer: NodeId,
    buf: FwdBuf,
    restage: Option<Landing>,
    in_channel: &Arc<Channel>,
    sinks: &mut S,
    routes: &RouteTable,
    cfg: GatewayConfig,
    shared: &FwdShared,
    streams: &mut BTreeMap<StreamKey, InStream>,
    cancelled: &mut BTreeSet<StreamKey>,
    open_from: &mut BTreeMap<NodeId, u64>,
    max_pkt: &mut usize,
) -> Result<()> {
    let (tag, body) = gtm::decode_packet(buf.bytes())?;
    let key = tag.key();
    // Arrival timestamp for the forward-latency histogram: one clock read
    // per relayed packet, and only when telemetry is on.
    let recv_ns = match &shared.metrics {
        Some(_) => shared.runtime.now_nanos(),
        None => 0,
    };

    // A batch frame from an upstream gateway: split the train and relay
    // each packet on its own. Frames are never forwarded verbatim — this
    // gateway re-coalesces by its *own* queue state, so a batch shaped
    // for a fast hop does not dictate the framing of a slow one.
    if matches!(body, PacketBody::Batch) {
        let mut subs: Vec<FwdBuf> = Vec::new();
        for sub in gtm::batch_packets(buf.bytes())? {
            let mut landed = shared.runtime.pool().get(sub.len());
            landed.vec().extend_from_slice(sub);
            subs.push(FwdBuf::Owned(landed));
        }
        drop(buf);
        for sub in subs {
            match relay_packet(
                rank, peer, sub, None, in_channel, sinks, routes, cfg, shared, streams, cancelled,
                open_from, max_pkt,
            ) {
                Ok(()) => {}
                Err(MadError::Disconnected) => return Err(MadError::Disconnected),
                Err(_) => {
                    // One bad packet poisons only itself, as on the
                    // unbatched path.
                    shared.stats.on_error();
                    trace_instant!(shared.tracer, "gw", "relay-error", "peer" = peer.0 as u64);
                }
            }
        }
        return Ok(());
    }

    // Returning flow-control traffic for streams this node sends out on
    // the inbound network: not forwarded, deposited into the ledger.
    if let PacketBody::Credit(n) = body {
        shared.ledger.deposit(key, n);
        return Ok(());
    }

    // A returning rendezvous CTS (kind 12): the downstream hop accepted
    // an RTS and prepaid the whole window. For a stream originated by a
    // writer resident on this node, park the grant for its `wait_grant`;
    // for a relayed stream, the prepayment funds this engine's own
    // outbound re-sends — deposit it so the forwarding side never stalls
    // on per-fragment credits for that block.
    if let PacketBody::RendezvousCts(m) = body {
        if tag.src == rank {
            shared.ledger.grant(key, m.window);
        } else {
            shared.ledger.deposit(key, m.window);
        }
        return Ok(());
    }

    // In-band metrics pull traffic rides the special conduits but never
    // touches stream state: hand it to the telemetry plane (serve a
    // request addressed here, file a reply, or relay it toward its
    // destination) and move on. Without a plane the packet is dropped —
    // telemetry is strictly best-effort.
    if matches!(body, PacketBody::MetricsRequest | PacketBody::MetricsReply) {
        if let Some(m) = &shared.metrics {
            m.plane.handle_packet(&tag, &body, buf.bytes());
        }
        return Ok(());
    }

    // Membership protocol traffic (kind 11) likewise rides the special
    // conduits outside stream state: the plane serves events addressed
    // here and relays the rest toward their destination. Without a plane
    // the packet is dropped — a membership-off node never joins anyway.
    if let PacketBody::Member(_) = body {
        if let Some(p) = &shared.member {
            p.handle_packet(&tag, &body, buf.bytes());
        }
        return Ok(());
    }

    // Late packets of a stream cancelled here: swallow until its source
    // stops (the end or cancel clears the tombstone).
    if cancelled.contains(&key) {
        if matches!(body, PacketBody::End | PacketBody::Cancel(_)) {
            cancelled.remove(&key);
        }
        return Ok(());
    }

    // A live in-flight stream marked cancelled in the ledger (its outbound
    // side timed out or hit a dead peer): tear it down on this side too —
    // tell the upstream hop, relay a cancel downstream in place of the
    // end, and tombstone the key.
    if streams.contains_key(&key) {
        if let Some(reason) = shared.ledger.cancelled(key) {
            cancel_stream(
                key, reason, true, in_channel, sinks, streams, cancelled, open_from, shared,
            );
            *max_pkt = landing_size(streams, cfg.max_batch, &in_channel.caps());
            // The packet in hand belongs to the dead stream: swallow it,
            // unless it is the source's own last word (no more will come).
            if matches!(body, PacketBody::End | PacketBody::Cancel(_)) {
                cancelled.remove(&key);
            }
            return Ok(());
        }
    }

    match body {
        PacketBody::Credit(_)
        | PacketBody::Batch
        | PacketBody::MetricsRequest
        | PacketBody::MetricsReply
        | PacketBody::Member(_)
        | PacketBody::RendezvousCts(_) => unreachable!("handled above"),
        PacketBody::RendezvousRts(m) => {
            // A bulk block announced itself. Pre-reserve the landing on
            // all three stations of this hop before its fragments arrive:
            // warm the landing-buffer class, prepay the upstream window
            // (CTS), and relay the RTS downstream *through the pipeline*
            // so it keeps its FIFO position ahead of the block.
            let stream = streams.get(&key).ok_or_else(|| {
                MadError::Protocol(format!("rendezvous RTS for unknown stream {key:?}"))
            })?;
            drop(shared.runtime.pool().get(*max_pkt));
            let window = m.window;
            let mut cts = shared.runtime.pool().get(gtm::RENDEZVOUS_PACKET_LEN);
            gtm::encode_rendezvous_cts_into(
                cts.vec(),
                &tag,
                &gtm::RendezvousMsg {
                    total: m.total,
                    mtu: m.mtu,
                    window,
                },
            );
            if in_channel.send_packet(peer, &[&cts]).is_ok() {
                shared.stats.cts_sent.fetch_add(1, Ordering::Relaxed);
                stream
                    .rendezvous_pending
                    .set(stream.rendezvous_pending.get() + window as u64);
            }
            shared.stats.rts_relayed.fetch_add(1, Ordering::Relaxed);
            trace_instant!(
                shared.tracer,
                "gw",
                "rendezvous",
                "src" = tag.src.0 as u64,
                "dest" = tag.dest.0 as u64,
            );
            let item = make_item(
                stream, buf, false, false, cfg, in_channel, peer, recv_ns, restage,
            );
            sinks.accept(stream, item, false, shared)
        }
        PacketBody::Header(header) => {
            if header.tag.dest == rank {
                return Err(MadError::Protocol(format!(
                    "message for the gateway itself ({rank}) arrived on the special channel"
                )));
            }
            if header.direct {
                return Err(MadError::Protocol(
                    "direct-delivery GTM stream arrived at a gateway".into(),
                ));
            }
            if streams.contains_key(&key) {
                return Err(MadError::Protocol(format!(
                    "duplicate GTM header for in-flight stream {key:?}"
                )));
            }
            let hop = routes.hop(header.tag.dest)?;
            if !sinks.bridges(hop.net) {
                return Err(MadError::Protocol(format!(
                    "route to {} leaves on {}, which this gateway does not bridge",
                    header.tag.dest, hop.net
                )));
            }
            let stream = InStream {
                out_net: hop.net,
                to: hop.node,
                last_hop: hop.last,
                pair: (tag.src, tag.dest),
                tag,
                upstream: peer,
                // Striped streams wrap every fragment in a seq envelope, so
                // the landing buffer must fit the envelope, not just the
                // inner packet.
                mtu: if header.stripes > 0 {
                    header.mtu + gtm::STRIPE_OVERHEAD as u32
                } else {
                    header.mtu
                },
                // Only the first hop acks: the inbound peer must *be* the
                // origin, so a chained gateway never acks on its behalf.
                ack: header.acked && peer == tag.src,
                rendezvous_pending: Cell::new(0),
            };
            // On a non-final hop this gateway is the next conduit's
            // sender: self-grant the window it will spend re-sending. The
            // window is read per stream open, so a controller retune
            // governs every stream accepted after it.
            let window = match &shared.tuning {
                Some(t) => t.credit_window(),
                None => cfg.credit_window,
            };
            if let (Some(w), false) = (window, hop.last) {
                shared.ledger.open(key, w);
            }
            shared.stats.on_header(stream.pair);
            trace_instant!(
                shared.tracer,
                "gw",
                "stream-open",
                "src" = tag.src.0 as u64,
                "dest" = tag.dest.0 as u64,
            );
            shared.live.opened();
            *open_from.entry(peer).or_insert(0) += 1;
            let item = make_item(
                &stream, buf, false, false, cfg, in_channel, peer, recv_ns, restage,
            );
            sinks.accept(&stream, item, false, shared)?;
            streams.insert(key, stream);
            *max_pkt = landing_size(streams, cfg.max_batch, &in_channel.caps());
            Ok(())
        }
        PacketBody::Part(_) => {
            let stream = streams.get(&key).ok_or_else(|| {
                MadError::Protocol(format!("GTM descriptor for unknown stream {key:?}"))
            })?;
            let item = make_item(
                stream, buf, false, false, cfg, in_channel, peer, recv_ns, restage,
            );
            sinks.accept(stream, item, false, shared)
        }
        PacketBody::Frag => {
            let stream = streams.get(&key).ok_or_else(|| {
                MadError::Protocol(format!("GTM fragment for unknown stream {key:?}"))
            })?;
            let payload = (buf.bytes().len() - PRELUDE_LEN) as u64;
            shared.stats.on_frag(stream.pair, payload);
            shared.runtime.charge_overhead(cfg.switch_overhead_ns);
            let item = make_item(
                stream, buf, true, false, cfg, in_channel, peer, recv_ns, restage,
            );
            shared.stats.held.add(item.held_bytes as i64);
            sinks.accept(stream, item, true, shared)
        }
        PacketBody::Stripe(_) => {
            // A stripe envelope is an opaque body packet of its stream: it
            // follows the stored route like any fragment and only the final
            // receiver unwraps it. The per-path raw end — not the enveloped
            // one — is what closes this gateway's stream state.
            let stream = streams.get(&key).ok_or_else(|| {
                MadError::Protocol(format!("GTM stripe for unknown stream {key:?}"))
            })?;
            let inner = gtm::stripe_inner(buf.bytes());
            let is_frag = inner.get(2) == Some(&gtm::KIND_FRAG);
            if is_frag {
                let payload = (inner.len() - PRELUDE_LEN) as u64;
                shared.stats.on_frag(stream.pair, payload);
                shared.runtime.charge_overhead(cfg.switch_overhead_ns);
            }
            let item = make_item(
                stream, buf, is_frag, false, cfg, in_channel, peer, recv_ns, restage,
            );
            shared.stats.held.add(item.held_bytes as i64);
            sinks.accept(stream, item, is_frag, shared)
        }
        PacketBody::End => {
            let stream = streams
                .remove(&key)
                .ok_or_else(|| MadError::Protocol(format!("GTM end for unknown stream {key:?}")))?;
            if let Some(n) = open_from.get_mut(&peer) {
                *n = n.saturating_sub(1);
            }
            *max_pkt = landing_size(streams, cfg.max_batch, &in_channel.caps());
            shared.stats.on_end(stream.pair);
            let item = make_item(
                &stream, buf, false, true, cfg, in_channel, peer, recv_ns, restage,
            );
            sinks.accept(&stream, item, false, shared)
        }
        PacketBody::Ack => {
            // Handoff acks flow from a first-hop gateway straight to the
            // stream's origin and are consumed by its writer; one arriving
            // here is a stale leftover of a failed-over path — ignore it.
            Ok(())
        }
        PacketBody::Cancel(reason) => {
            if let Some(mut stream) = streams.remove(&key) {
                // The upstream hop killed the stream: drop its state, mark
                // the ledger (waking any forwarding side blocked on its
                // credits) and relay the cancel downstream in place of the
                // end packet.
                if let Some(n) = open_from.get_mut(&peer) {
                    *n = n.saturating_sub(1);
                }
                *max_pkt = landing_size(streams, cfg.max_batch, &in_channel.caps());
                shared.ledger.cancel(key, reason);
                shared.stats.on_cancelled();
                trace_instant!(
                    shared.tracer,
                    "gw",
                    "stream-cancel",
                    "src" = tag.src.0 as u64,
                    "dest" = tag.dest.0 as u64,
                );
                // A relayed cancel terminates the stream but is not a
                // successful handoff — never ack it.
                stream.ack = false;
                let item = make_item(
                    &stream, buf, false, true, cfg, in_channel, peer, recv_ns, restage,
                );
                sinks.accept(&stream, item, false, shared)
            } else if shared.ledger.cancel_existing(key, reason) {
                // Returning-direction cancel: a downstream hop killed a
                // stream this node *sends* out on the inbound network.
                // Marking the account wakes the blocked sender (a local
                // writer or a forwarding thread), which surfaces the
                // typed error.
                Ok(())
            } else {
                Err(MadError::Protocol(format!(
                    "GTM cancel for unknown stream {key:?}"
                )))
            }
        }
    }
}

/// Build the pipeline item for one accepted packet.
#[allow(clippy::too_many_arguments)] // internal helper of relay_packet
fn make_item(
    stream: &InStream,
    buf: FwdBuf,
    is_frag: bool,
    end_of_stream: bool,
    cfg: GatewayConfig,
    in_channel: &Arc<Channel>,
    peer: NodeId,
    recv_ns: u64,
    restage: Option<Landing>,
) -> FwdItem {
    let held_bytes = if is_frag { buf.bytes().len() } else { 0 };
    // A fragment prepaid by a rendezvous CTS must not also return its
    // per-fragment grant — the whole window went upstream at once.
    let grant = if is_frag && cfg.credit_window.is_some() {
        let pending = stream.rendezvous_pending.get();
        if pending > 0 {
            stream.rendezvous_pending.set(pending - 1);
            None
        } else {
            Some((in_channel.clone(), peer))
        }
    } else {
        None
    };
    FwdItem {
        to: stream.to,
        last_hop: stream.last_hop,
        buf,
        tag: stream.tag,
        end_of_stream,
        held_bytes,
        // Forward latency is measured on payload fragments only.
        recv_ns: if is_frag { recv_ns } else { 0 },
        consume: is_frag && cfg.credit_window.is_some() && !stream.last_hop,
        grant,
        ack: (end_of_stream && stream.ack).then(|| (in_channel.clone(), peer)),
        restage,
    }
}

/// Tear down one in-flight stream after a cancellation: notify the
/// upstream hop (so its sender stops), enqueue a cancel downstream in
/// place of the end packet (so later hops and the receiver drop it), and
/// tombstone the key so the source's still-in-flight packets are
/// swallowed. Only the affected stream dies — everything else keeps
/// flowing.
#[allow(clippy::too_many_arguments)] // internal helper of the engine cores
fn cancel_stream<S: ItemSink>(
    key: StreamKey,
    reason: CancelReason,
    notify_upstream: bool,
    in_channel: &Arc<Channel>,
    sinks: &mut S,
    streams: &mut BTreeMap<StreamKey, InStream>,
    cancelled: &mut BTreeSet<StreamKey>,
    open_from: &mut BTreeMap<NodeId, u64>,
    shared: &FwdShared,
) {
    let Some(stream) = streams.remove(&key) else {
        return;
    };
    shared.stats.on_cancelled();
    trace_instant!(
        shared.tracer,
        "gw",
        "stream-cancel",
        "src" = stream.tag.src.0 as u64,
        "dest" = stream.tag.dest.0 as u64,
    );
    if let Some(n) = open_from.get_mut(&stream.upstream) {
        *n = n.saturating_sub(1);
    }
    if notify_upstream {
        let mut cancel = shared.runtime.pool().get(PRELUDE_LEN + 1);
        gtm::encode_cancel_into(cancel.vec(), &stream.tag, reason);
        let _ = in_channel.send_packet(stream.upstream, &[&cancel]);
    }
    cancelled.insert(key);
    // A synthesized cancel replaces the end packet downstream; dropping it
    // on a dead sink is fine — its consumption is what releases the
    // stream from the drain count either way.
    let mut cancel = shared.runtime.pool().get(PRELUDE_LEN + 1);
    gtm::encode_cancel_into(cancel.vec(), &stream.tag, reason);
    let item = FwdItem {
        to: stream.to,
        last_hop: stream.last_hop,
        buf: FwdBuf::Owned(cancel),
        tag: stream.tag,
        end_of_stream: true,
        held_bytes: 0,
        recv_ns: 0,
        consume: false,
        grant: None,
        // A cancelled stream is never acked: the origin's ack deadline (or
        // the upstream cancel notification) drives its failover.
        ack: None,
        restage: None,
    };
    let _ = sinks.accept(&stream, item, false, shared);
}

/// Cancel every stream that entered through `peer` (its conduit framing is
/// lost). Downstream hops are told; the peer itself is not (its conduit
/// just failed).
fn cancel_peer_streams<S: ItemSink>(
    peer: NodeId,
    in_channel: &Arc<Channel>,
    sinks: &mut S,
    streams: &mut BTreeMap<StreamKey, InStream>,
    cancelled: &mut BTreeSet<StreamKey>,
    open_from: &mut BTreeMap<NodeId, u64>,
    shared: &FwdShared,
) {
    let keys: Vec<StreamKey> = streams
        .iter()
        .filter(|(_, s)| s.upstream == peer)
        .map(|(&k, _)| k)
        .collect();
    for key in keys {
        shared.ledger.cancel(key, CancelReason::PeerUnreachable);
        cancel_stream(
            key,
            CancelReason::PeerUnreachable,
            false,
            in_channel,
            sinks,
            streams,
            cancelled,
            open_from,
            shared,
        );
    }
}

/// Receive one packet from the inbound conduit into the cheapest buffer
/// the landing policy allows. All three landings draw on the session
/// buffer pool, so a warmed-up gateway allocates nothing per packet.
///
/// When the landing requires a staging copy (`Static`/`Tmp`), the
/// copy-placement scheduler decides *which* pipeline stage performs it:
/// if `can_defer` holds (dynamic inbound driver feeding a real flush
/// stage) and the flush side is idle right now, the packet is taken raw
/// and the returned landing marker tells the flush stage to restage it
/// before transmitting — overlapping the copy with the next receive, the
/// E2 win. Otherwise the copy happens here, exactly as before.
fn receive_packet(
    in_channel: &Arc<Channel>,
    peer: NodeId,
    landing: Landing,
    max_pkt: usize,
    pool: &Arc<mad_util::pool::BufferPool>,
    can_defer: bool,
    stats: &GatewayStats,
) -> Result<(FwdBuf, Option<Landing>)> {
    let mut conduit = in_channel.lock_conduit(peer)?;
    let staged = match landing {
        Landing::Owned => {
            return Ok((FwdBuf::Owned(pool.adopt(conduit.recv_owned()?)), None));
        }
        staged => staged,
    };
    if can_defer && stats.flush_active.load(Ordering::Relaxed) == 0 {
        let buf = FwdBuf::Owned(pool.adopt(conduit.recv_owned()?));
        // Flush-placed while flush was idle: an idle-stage placement by
        // construction.
        stats.copy_idle_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((buf, Some(staged)));
    }
    let buf = match staged {
        Landing::Owned => unreachable!("owned landing returned above"),
        Landing::Static(owner) => {
            let mut sb = StaticBuf::from_pooled(owner, pool.take(max_pkt));
            let n = conduit.recv_into(sb.as_mut_slice())?;
            sb.truncate(n);
            FwdBuf::Static(sb)
        }
        Landing::Tmp => {
            let mut tmp = pool.take(max_pkt);
            let n = conduit.recv_into(&mut tmp)?;
            tmp.vec().truncate(n);
            FwdBuf::Owned(tmp)
        }
    };
    stats.copies_recv.fetch_add(1, Ordering::Relaxed);
    // Receive-placed: an idle-stage placement only if nothing deliverable
    // was already waiting behind the copy on this conduit (`backlog`, not
    // `ready` — a sender running ahead of modeled time is not backlog).
    if !conduit.backlog() {
        stats.copy_idle_hits.fetch_add(1, Ordering::Relaxed);
    }
    Ok((buf, None))
}

/// Perform a deferred staging copy on the flush stage: rebuild the buffer
/// the receive side would have produced, right before transmission. The
/// copy cost lands on this stage's clock (and the simulated timeline via
/// `charge_copy`), which is the whole point — it overlaps with the next
/// receive instead of serializing behind it.
fn restage_item(item: &mut FwdItem, shared: &FwdShared) {
    let Some(landing) = item.restage.take() else {
        return;
    };
    let bytes = item.buf.bytes().len();
    let pool = shared.runtime.pool();
    let staged = match landing {
        Landing::Owned => return, // nothing to restage
        Landing::Static(owner) => {
            let mut sb = StaticBuf::from_pooled(owner, pool.take(bytes));
            sb.as_mut_slice().copy_from_slice(item.buf.bytes());
            FwdBuf::Static(sb)
        }
        Landing::Tmp => {
            let mut tmp = pool.get(bytes);
            tmp.vec().extend_from_slice(item.buf.bytes());
            FwdBuf::Owned(tmp)
        }
    };
    shared.runtime.charge_copy(bytes);
    shared.stats.copies_flush.fetch_add(1, Ordering::Relaxed);
    if let Some(m) = &shared.metrics {
        m.copy_bytes.record(bytes as u64);
    }
    item.buf = staged;
}

/// Derive the landing policy of one inbound direction from the buffer
/// disciplines of every channel it can forward into.
fn landing_policy<'a>(paths: impl Iterator<Item = &'a OutPath>, cfg: GatewayConfig) -> Landing {
    if !cfg.zero_copy {
        return Landing::Tmp;
    }
    let mut owner: Option<&'static str> = None;
    for path in paths {
        for caps in [path.regular.caps(), path.special.caps()] {
            if caps.mode != BufferMode::Static {
                return Landing::Owned;
            }
            match owner {
                None => owner = Some(caps.name),
                Some(o) if o == caps.name => {}
                // Two static drivers with different buffer ownership: no
                // single landing buffer suits both, fall back to owned.
                Some(_) => return Landing::Owned,
            }
        }
    }
    owner.map_or(Landing::Owned, Landing::Static)
}

/// Hand one packet to its sink: enqueue for the forwarding thread (counting
/// backpressure stalls) or retransmit inline at depth 1.
fn dispatch(
    sink: &Sink,
    stream: &InStream,
    item: FwdItem,
    is_frag: bool,
    shared: &FwdShared,
) -> Result<()> {
    match sink {
        Sink::Queue(tx, _) => {
            if is_frag {
                shared.stats.on_switch(stream.pair);
            }
            match tx.try_push(item) {
                Ok(()) => {
                    if let Some(m) = &shared.metrics {
                        m.queue_depth.add(1);
                    }
                    Ok(())
                }
                Err(item) => {
                    shared.stats.on_stall(stream.pair);
                    trace_instant!(
                        shared.tracer,
                        "gw",
                        "stall",
                        "src" = stream.pair.0 .0 as u64,
                        "dest" = stream.pair.1 .0 as u64,
                    );
                    let _wait = trace_span!(shared.tracer, "gw", "stall-wait");
                    match tx.push(item) {
                        Ok(()) => {
                            if let Some(m) = &shared.metrics {
                                m.queue_depth.add(1);
                            }
                            Ok(())
                        }
                        Err(item) => {
                            // The forwarding thread is gone: account the
                            // item ourselves, then shut this side down.
                            drop_item(&item, shared);
                            Err(MadError::Disconnected)
                        }
                    }
                }
            }
        }
        Sink::Inline(path) => {
            if consume_item(path, item, shared) {
                Ok(())
            } else {
                Err(MadError::Disconnected)
            }
        }
    }
}

/// Account for a pipeline item that is being dropped instead of sent: the
/// held-bytes gauge goes down, and an end-equivalent item still releases
/// its stream (consumed-by-sink means sent *or* dropped).
fn drop_item(item: &FwdItem, shared: &FwdShared) {
    shared.stats.held.sub(item.held_bytes as i64);
    if item.end_of_stream {
        shared.live.stream_done();
        shared.ledger.close(item.tag.key());
    }
}

/// Cancel a stream from its outbound side (credit deadline hit or dead
/// peer): mark the node's ledger, and — if this is the first cancellation
/// of the stream — send best-effort cancel packets to the neighbour hops.
/// `tell_downstream` is false when the downstream conduit itself is what
/// just failed.
#[allow(clippy::too_many_arguments)] // internal helper of consume_item
fn cancel_outbound(
    path: &OutPath,
    to: NodeId,
    last_hop: bool,
    tag: &StreamTag,
    grant: &Option<(Arc<Channel>, NodeId)>,
    reason: CancelReason,
    tell_downstream: bool,
    shared: &FwdShared,
) {
    let key = tag.key();
    let first = shared.ledger.cancelled(key).is_none();
    shared.ledger.cancel(key, reason);
    if !first {
        return; // the stream is already being torn down; don't re-notify
    }
    trace_instant!(
        shared.tracer,
        "gw",
        "stream-cancel",
        "src" = tag.src.0 as u64,
        "dest" = tag.dest.0 as u64,
    );
    let mut cancel = shared.runtime.pool().get(PRELUDE_LEN + 1);
    gtm::encode_cancel_into(cancel.vec(), tag, reason);
    if tell_downstream {
        let _ = path.channel(last_hop).send_packet(to, &[&cancel]);
    }
    if let Some((grant_ch, grant_peer)) = grant {
        let _ = grant_ch.send_packet(*grant_peer, &[&cancel]);
    }
}

/// Consume the outbound credit of one pipeline item, waiting up to the
/// credit deadline. On failure the stream is cancelled and the item
/// accounted (dropped); `None` tells the caller the item was consumed.
fn take_credit_blocking(path: &OutPath, item: FwdItem, shared: &FwdShared) -> Option<FwdItem> {
    if !item.consume {
        return Some(item);
    }
    let wait_start = shared.metrics.as_ref().map(|_| shared.runtime.now_nanos());
    match shared
        .ledger
        .take_blocking(item.tag.key(), shared.credit_timeout_ns, &*shared.runtime)
    {
        Ok(()) => {
            if let (Some(m), Some(start)) = (&shared.metrics, wait_start) {
                m.credit_wait_ns
                    .record(shared.runtime.now_nanos().saturating_sub(start));
            }
            Some(item)
        }
        Err(fail) => {
            let reason = match fail {
                TakeFailure::Timeout => {
                    shared.stats.credit_timeouts.fetch_add(1, Ordering::Relaxed);
                    CancelReason::CreditTimeout
                }
                TakeFailure::Cancelled(r) => r,
            };
            cancel_outbound(
                path,
                item.to,
                item.last_hop,
                &item.tag,
                &item.grant,
                reason,
                true,
                shared,
            );
            drop_item(&item, shared);
            None
        }
    }
}

/// Retransmit one pipeline item on its outgoing conduit, driving the
/// credit protocol around it: consume an outbound credit first (deadline-
/// bounded), return an upstream grant after, degrade the stream — not the
/// engine — on failure. Returns `false` only on an orderly disconnect,
/// which shuts the consuming thread down.
fn consume_item(path: &OutPath, item: FwdItem, shared: &FwdShared) -> bool {
    match take_credit_blocking(path, item, shared) {
        Some(item) => transmit_item(path, item, shared),
        None => true,
    }
}

/// Retransmit one pipeline item whose credit (if any) is already in hand.
fn transmit_item(path: &OutPath, mut item: FwdItem, shared: &FwdShared) -> bool {
    restage_item(&mut item, shared);
    let FwdItem {
        to,
        last_hop,
        buf,
        tag,
        end_of_stream,
        held_bytes,
        recv_ns,
        consume: _,
        grant,
        ack,
        restage: _,
    } = item;
    let account_drop = |shared: &FwdShared| {
        shared.stats.held.sub(held_bytes as i64);
        if end_of_stream {
            shared.live.stream_done();
            shared.ledger.close(tag.key());
        }
    };
    let channel = path.channel(last_hop);
    let bytes = buf.bytes().len();
    let send = trace_span!(shared.tracer, "gw", "send", "bytes" = bytes as u64);
    let sent = match channel.lock_conduit(to) {
        Ok(mut conduit) => {
            let r = send_buf(&mut **conduit, buf);
            drop(conduit);
            r
        }
        Err(e) => Err(e),
    };
    drop(send);
    match sent {
        Ok(()) => {
            channel.stats().on_send(to.0, bytes);
            if let Some(m) = &shared.metrics {
                if recv_ns > 0 {
                    m.forward_ns
                        .record(shared.runtime.now_nanos().saturating_sub(recv_ns));
                }
            }
            shared.stats.held.sub(held_bytes as i64);
            if let Some((grant_ch, grant_peer)) = &grant {
                let mut credit = shared.runtime.pool().get(PRELUDE_LEN + 4);
                gtm::encode_credit_into(credit.vec(), &tag, 1);
                if grant_ch.send_packet(*grant_peer, &[&credit]).is_ok() {
                    shared.stats.credits_granted.fetch_add(1, Ordering::Relaxed);
                }
            }
            if let Some((ack_ch, ack_peer)) = &ack {
                // The stream's end packet is on the wire: tell the origin
                // the handoff succeeded. A lost ack is recovered by the
                // origin's deadline (it re-issues; the receiver absorbs the
                // ghost), so a failed send here is not an error.
                let mut ackp = shared.runtime.pool().get(PRELUDE_LEN);
                gtm::encode_ack_into(ackp.vec(), &tag);
                if ack_ch.send_packet(*ack_peer, &[&ackp]).is_ok() {
                    shared.stats.acks_sent.fetch_add(1, Ordering::Relaxed);
                }
            }
            if end_of_stream {
                shared.live.stream_done();
                shared.ledger.close(tag.key());
            }
            true
        }
        Err(MadError::Disconnected) => {
            // Orderly teardown of the outbound conduit: account the item
            // and let the caller shut this side down.
            account_drop(shared);
            false
        }
        Err(_) => {
            // A hard fault on the outbound hop (dead peer): this stream
            // cannot make progress — cancel it both ways, drop the
            // packet, and keep serving every other stream.
            shared.stats.on_error();
            cancel_outbound(
                path,
                to,
                last_hop,
                &tag,
                &grant,
                CancelReason::PeerUnreachable,
                false,
                shared,
            );
            account_drop(shared);
            true
        }
    }
}

/// Retransmit a train of credit-holding pipeline items bound for the same
/// conduit as one batch frame: one wire send, one per-send overhead. A
/// train of one degenerates to the plain single-packet path (no framing).
/// Upstream credit grants are aggregated into one packet per stream.
/// Returns `false` only on an orderly disconnect.
fn transmit_batch(path: &OutPath, mut batch: Vec<FwdItem>, shared: &FwdShared) -> bool {
    if batch.len() == 1 {
        let Some(item) = batch.into_iter().next() else {
            return true;
        };
        return transmit_item(path, item, shared);
    }
    for item in &mut batch {
        restage_item(item, shared);
    }
    let to = batch[0].to;
    let last_hop = batch[0].last_hop;
    let channel = path.channel(last_hop);
    let bytes: usize = batch.iter().map(|i| i.buf.bytes().len()).sum();
    let send = trace_span!(
        shared.tracer,
        "gw",
        "send-batch",
        "packets" = batch.len() as u64,
        "bytes" = bytes as u64
    );
    let sent = match channel.lock_conduit(to) {
        Ok(mut conduit) => {
            let packets: Vec<&[u8]> = batch.iter().map(|i| i.buf.bytes()).collect();
            let r = conduit.send_batch(&packets);
            drop(packets);
            drop(conduit);
            r
        }
        Err(e) => Err(e),
    };
    drop(send);
    match sent {
        Ok(()) => {
            channel.stats().on_send(to.0, bytes);
            if let Some(m) = &shared.metrics {
                let now = shared.runtime.now_nanos();
                for item in &batch {
                    if item.recv_ns > 0 {
                        m.forward_ns.record(now.saturating_sub(item.recv_ns));
                    }
                }
            }
            // One aggregated grant per (upstream peer, stream) instead of
            // one packet per fragment.
            let mut grants: Vec<(Arc<Channel>, NodeId, StreamTag, u32)> = Vec::new();
            for item in &batch {
                if let Some((ch, p)) = &item.grant {
                    match grants
                        .iter_mut()
                        .find(|g| g.1 == *p && g.2.key() == item.tag.key())
                    {
                        Some(g) => g.3 += 1,
                        None => grants.push((ch.clone(), *p, item.tag, 1)),
                    }
                }
            }
            for (ch, p, tag, n) in grants {
                let mut credit = shared.runtime.pool().get(PRELUDE_LEN + 4);
                gtm::encode_credit_into(credit.vec(), &tag, n);
                if ch.send_packet(p, &[&credit]).is_ok() {
                    shared
                        .stats
                        .credits_granted
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
            }
            for item in &batch {
                if let Some((ack_ch, ack_peer)) = &item.ack {
                    let mut ackp = shared.runtime.pool().get(PRELUDE_LEN);
                    gtm::encode_ack_into(ackp.vec(), &item.tag);
                    if ack_ch.send_packet(*ack_peer, &[&ackp]).is_ok() {
                        shared.stats.acks_sent.fetch_add(1, Ordering::Relaxed);
                    }
                }
                shared.stats.held.sub(item.held_bytes as i64);
                if item.end_of_stream {
                    shared.live.stream_done();
                    shared.ledger.close(item.tag.key());
                }
            }
            true
        }
        Err(MadError::Disconnected) => {
            for item in &batch {
                drop_item(item, shared);
            }
            false
        }
        Err(_) => {
            // A hard fault kills every stream with a packet on the train
            // (the conduit's framing is gone for all of them) — cancel
            // each once, keep the engine alive.
            shared.stats.on_error();
            for item in &batch {
                cancel_outbound(
                    path,
                    item.to,
                    item.last_hop,
                    &item.tag,
                    &item.grant,
                    CancelReason::PeerUnreachable,
                    false,
                    shared,
                );
                drop_item(item, shared);
            }
            true
        }
    }
}

/// Transmit one pipeline buffer on an outgoing conduit.
fn send_buf(conduit: &mut dyn Conduit, buf: FwdBuf) -> Result<()> {
    match buf {
        FwdBuf::Owned(v) => conduit.send(&[&v]),
        FwdBuf::Static(sb) => conduit.send_static(sb),
    }
}

/// The forwarding thread of one (inbound, outbound) network pair: drains
/// the pipeline and retransmits. Each item is self-contained, so the
/// outgoing conduit is locked per train — the §7b lesson-2 invariant at
/// fragment granularity — and packets of concurrent streams interleave.
///
/// With `max_batch ≥ 2` the thread coalesces opportunistically: after the
/// head item's credit is secured, already-queued items bound for the same
/// conduit are pulled (non-blocking credit takes only) until the train
/// reaches `max_batch`, the driver's preferred packet size, its gather
/// limit, or an incompatible/credit-dry item — which is carried over as
/// the next head, preserving FIFO order. An idle pipeline degenerates to
/// packet-at-a-time, so batching never adds latency, only removes
/// per-send overhead when a backlog exists.
fn forwarding_thread(
    rx: RtReceiver<FwdItem>,
    path: OutPath,
    shared: FwdShared,
    cfg_max_batch: usize,
) {
    let _exit = ThreadExitGuard {
        live: shared.live.clone(),
    };
    let timed = shared.metrics.is_some() || shared.tracer.enabled();
    let mut pending: Option<FwdItem> = None;
    loop {
        // The batch cap is re-read per train so a controller retune takes
        // effect on the next coalescing decision, not the next session.
        let max_batch = shared
            .tuning
            .as_ref()
            .map(|t| t.max_batch())
            .unwrap_or(cfg_max_batch);
        let head = match pending.take() {
            Some(item) => item,
            None => match rx.pop() {
                Some(item) => {
                    if let Some(m) = &shared.metrics {
                        m.queue_depth.add(-1);
                    }
                    item
                }
                None => return, // polling thread gone: shut down
            },
        };
        // The flush stage is busy from the moment it holds an item until
        // the train leaves the wire — the copy-placement scheduler reads
        // `flush_active` to decide where a relay copy overlaps best.
        let _stage = StageBusy::enter(
            Some(&shared.stats.flush_active),
            &shared.stats.flush_busy_ns,
            &*shared.runtime,
            timed,
        );
        if max_batch <= 1 {
            if !consume_item(&path, head, &shared) {
                return;
            }
            continue;
        }
        let Some(head) = take_credit_blocking(&path, head, &shared) else {
            continue; // stream cancelled; item accounted
        };
        let caps = path.channel(head.last_hop).caps();
        // Frame budget: never exceed what the driver performs best with —
        // a route-MTU bulk fragment fails this check alone and is sent
        // singly (keeping its zero-copy static path), so batching cannot
        // penalize bulk streams.
        let budget = caps.preferred_mtu.min(caps.max_packet);
        let mut frame = PRELUDE_LEN + gtm::BATCH_ENTRY_OVERHEAD + head.buf.bytes().len();
        let mut batch = vec![head];
        while batch.len() < max_batch && frame <= budget && 2 * (batch.len() + 1) < caps.max_gather
        {
            let Some(next) = rx.try_pop() else {
                break; // queue drained: send what we have
            };
            if let Some(m) = &shared.metrics {
                m.queue_depth.add(-1);
            }
            if next.to != batch[0].to || next.last_hop != batch[0].last_hop {
                pending = Some(next); // different conduit: next train's head
                break;
            }
            let need = gtm::BATCH_ENTRY_OVERHEAD + next.buf.bytes().len();
            if frame + need > budget {
                pending = Some(next);
                break;
            }
            if next.consume {
                match shared.ledger.try_take(next.tag.key()) {
                    crate::credit::TakeOutcome::Taken => {}
                    crate::credit::TakeOutcome::Empty => {
                        // Credit-dry: don't reorder behind it — stash it
                        // as the next head and let the blocking wait run.
                        pending = Some(next);
                        break;
                    }
                    crate::credit::TakeOutcome::Cancelled(r) => {
                        cancel_outbound(
                            &path,
                            next.to,
                            next.last_hop,
                            &next.tag,
                            &next.grant,
                            r,
                            true,
                            &shared,
                        );
                        drop_item(&next, &shared);
                        continue; // dead stream's packet drops out of the train
                    }
                }
            }
            frame += need;
            batch.push(next);
        }
        if !transmit_batch(&path, batch, &shared) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{channel_pair, MockDriver};

    /// The teardown quiescence contract, station by station: a stop only
    /// takes effect once no registered inbound conduit holds packets, no
    /// engine is mid-relay, and no stream is open — in any interleaving,
    /// a packet parked at one station keeps every engine alive.
    #[test]
    fn stop_waits_for_session_wide_quiescence() {
        let stopctl = GatewayStop::new();
        assert!(!stopctl.should_stop(), "no stop requested yet");

        let (a, b) = channel_pair(MockDriver::dynamic());
        let b = Arc::new(b);
        stopctl.register_source(Arc::downgrade(&b));
        stopctl.request_stop();
        assert!(stopctl.should_stop(), "quiescent session stops at once");

        // A packet queued on a registered inbound conduit — even one this
        // engine itself will never relay — holds the stop off.
        a.send_packet(NodeId(1), &[b"backlog"]).unwrap();
        assert!(!stopctl.should_stop(), "inbound backlog must drain first");

        // Popping it moves it to the relay bracket: still not quiescent.
        let pkt = b.lock_conduit(NodeId(0)).unwrap().recv_owned().unwrap();
        let busy = BusyGuard::enter(&stopctl);
        assert!(!stopctl.should_stop(), "a packet mid-relay holds the stop");

        // Accepting its stream moves it to the open-stream station.
        stopctl.opened();
        drop(busy);
        assert!(!stopctl.should_stop(), "an open stream holds the stop");

        // Retransmitting the end releases the last station.
        stopctl.end_forwarded();
        assert!(stopctl.should_stop(), "drained session stops");
        drop(pkt);

        // A dead source (engine exited, conduits dropped) is skipped.
        a.send_packet(NodeId(1), &[b"undeliverable"]).unwrap();
        assert!(!stopctl.should_stop());
        drop(b);
        assert!(stopctl.should_stop(), "dead weak sources are skipped");

        // Force waives the drain entirely.
        let (a2, b2) = channel_pair(MockDriver::dynamic());
        let b2 = Arc::new(b2);
        stopctl.register_source(Arc::downgrade(&b2));
        a2.send_packet(NodeId(1), &[b"stuck"]).unwrap();
        assert!(!stopctl.should_stop());
        stopctl.force();
        assert!(stopctl.should_stop(), "force bypasses the drain");
        drop(b2);
    }
}
