//! Deterministic buffer-grouping rules (the Buffer Management Module logic,
//! paper §2.1.1).
//!
//! Madeleine messages are not self-described: the receiver must reconstruct
//! the sender's packet grouping purely from the `(length, SendMode,
//! RecvMode)` sequence of its own unpack calls. That works because grouping
//! is a *pure function* of the flags and the driver's capabilities, shared
//! by both sides:
//!
//! * a block packed with [`RecvMode::Express`] flushes the aggregation
//!   (the receiver needs it immediately);
//! * a block packed with [`SendMode::Safer`] flushes too (the sender's
//!   buffer may be reused right after `pack`, and the dynamic BMMs reference
//!   user memory instead of copying);
//! * everything else aggregates until `end_packing`.
//!
//! Within one flushed group, [`packetize`] splits the accumulated blocks
//! into wire packets bounded by the driver's MTU and gather limit. The
//! receiver does not need the split (it counts bytes off in-order packets),
//! but the function is shared so tests can assert both sides agree.

use crate::flags::{RecvMode, SendMode};

/// Should the aggregation be flushed right after a block with these flags?
pub fn flush_after(send: SendMode, recv: RecvMode) -> bool {
    recv.is_express() || !send.may_defer()
}

/// A contiguous piece of one packet: `part` indexes the group's blocks,
/// `offset`/`len` select the bytes of that block carried by this segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Index of the source block within the flushed group.
    pub part: usize,
    /// Byte offset within the block.
    pub offset: usize,
    /// Segment length in bytes.
    pub len: usize,
}

/// Split a group of block lengths into packets: each packet carries at most
/// `mtu` bytes and at most `max_gather` segments. Blocks larger than the
/// MTU are fragmented; small blocks are gathered.
///
/// Zero-length blocks occupy no segment (they carry no bytes); a group of
/// only zero-length blocks produces no packets.
pub fn packetize(lens: &[usize], mtu: usize, max_gather: usize) -> Vec<Vec<Segment>> {
    assert!(mtu > 0, "MTU must be positive");
    assert!(max_gather > 0, "gather limit must be at least 1");
    let mut packets = Vec::new();
    let mut current: Vec<Segment> = Vec::new();
    let mut current_bytes = 0usize;
    for (part, &len) in lens.iter().enumerate() {
        let mut offset = 0;
        while offset < len {
            if current_bytes == mtu || current.len() == max_gather {
                packets.push(std::mem::take(&mut current));
                current_bytes = 0;
            }
            let space = mtu - current_bytes;
            let take = space.min(len - offset);
            current.push(Segment {
                part,
                offset,
                len: take,
            });
            current_bytes += take;
            offset += take;
        }
    }
    if !current.is_empty() {
        packets.push(current);
    }
    packets
}

/// Total bytes of a group.
pub fn group_bytes(lens: &[usize]) -> usize {
    lens.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_rules_follow_flags() {
        assert!(flush_after(SendMode::Later, RecvMode::Express));
        assert!(flush_after(SendMode::Safer, RecvMode::Cheaper));
        assert!(flush_after(SendMode::Safer, RecvMode::Express));
        assert!(!flush_after(SendMode::Later, RecvMode::Cheaper));
        assert!(!flush_after(SendMode::Cheaper, RecvMode::Cheaper));
    }

    #[test]
    fn small_blocks_gather_into_one_packet() {
        let pkts = packetize(&[10, 20, 30], 1024, 16);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].len(), 3);
        assert_eq!(
            pkts[0][1],
            Segment {
                part: 1,
                offset: 0,
                len: 20
            }
        );
    }

    #[test]
    fn large_block_fragments_at_mtu() {
        let pkts = packetize(&[2500], 1000, 16);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0][0].len, 1000);
        assert_eq!(pkts[1][0].offset, 1000);
        assert_eq!(pkts[2][0].len, 500);
    }

    #[test]
    fn gather_limit_splits_packets() {
        let pkts = packetize(&[1, 1, 1, 1, 1], 1024, 2);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].len(), 2);
        assert_eq!(pkts[2].len(), 1);
    }

    #[test]
    fn mixed_sizes_pack_tightly() {
        // 900 + 300: second block splits across packets 1 and 2.
        let pkts = packetize(&[900, 300], 1000, 16);
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].len(), 2);
        assert_eq!(pkts[0][1].len, 100);
        assert_eq!(pkts[1][0].offset, 100);
        assert_eq!(pkts[1][0].len, 200);
    }

    #[test]
    fn zero_length_blocks_vanish() {
        assert!(packetize(&[0, 0], 1024, 4).is_empty());
        let pkts = packetize(&[0, 5, 0], 1024, 4);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].len(), 1);
        assert_eq!(pkts[0][0].part, 1);
    }

    #[test]
    fn conservation_of_bytes() {
        for lens in [vec![7usize, 9, 1024, 3], vec![4096], vec![1; 50]] {
            for mtu in [16usize, 64, 1024] {
                for gather in [1usize, 2, 8] {
                    let pkts = packetize(&lens, mtu, gather);
                    let total: usize = pkts.iter().flatten().map(|s| s.len).sum();
                    assert_eq!(total, group_bytes(&lens));
                    for p in &pkts {
                        let bytes: usize = p.iter().map(|s| s.len).sum();
                        assert!(bytes <= mtu);
                        assert!(p.len() <= gather);
                        assert!(!p.is_empty());
                    }
                }
            }
        }
    }
}
