//! Size-classed recycling buffer pool.
//!
//! The forwarding hot path handles one `Vec<u8>` per GTM packet: the landing
//! buffer a fragment is received into, the staging buffer a gather send is
//! assembled into, every encoded control packet. Allocating those from the
//! global heap costs a malloc/free pair per fragment — measurable next to
//! the tens-of-µs buffer-switch overhead the paper's cost model charges per
//! send, and pure waste given that the same handful of sizes recirculate
//! forever. [`BufferPool`] keeps freed buffers in power-of-two size classes
//! and hands them back on the next request; [`PooledBuf`] returns itself to
//! its pool on drop, so call sites keep ordinary owned-buffer ergonomics.
//!
//! The pool is a cache, not an arena: a miss falls through to a plain `Vec`
//! allocation and the buffer still joins the pool when dropped. Counters
//! ([`PoolStats`]) distinguish hits from misses so tests can assert the
//! steady-state invariant the gateway aims for — zero misses per fragment
//! after warm-up.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;

/// Smallest size class, bytes. Requests below this round up.
const MIN_CLASS: usize = 64;
/// Largest pooled capacity, bytes. Larger buffers are served by the heap
/// and discarded on return (counted, not recycled) — one giant message
/// must not pin megabytes in the free lists forever.
const MAX_CLASS: usize = 1 << 20;
/// Number of power-of-two classes between [`MIN_CLASS`] and [`MAX_CLASS`].
const N_CLASSES: usize = (MAX_CLASS.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize + 1;
/// Retained buffers per class. Beyond this, returns are discarded: the cap
/// bounds worst-case idle memory at Σ class_size × MAX_RETAINED ≈ 128 MB,
/// while the steady-state working set (a few buffers per gateway link)
/// stays far below it.
const MAX_RETAINED: usize = 64;

/// Cumulative pool counters, snapshot via [`BufferPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total `get`/`take` requests.
    pub gets: u64,
    /// Requests served from a free list.
    pub hits: u64,
    /// Requests that fell through to a heap allocation.
    pub misses: u64,
    /// Buffers returned to a free list on drop.
    pub recycled: u64,
    /// Buffers dropped to the heap on return (over-cap class or oversized).
    pub discarded: u64,
}

/// A thread-safe pool of recycled byte buffers in power-of-two size
/// classes from 64 B to 1 MB.
#[derive(Debug, Default)]
pub struct BufferPool {
    classes: [Mutex<Vec<Vec<u8>>>; N_CLASSES],
    gets: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

/// Index of the smallest class whose capacity covers `cap`, or `None` if
/// `cap` exceeds the largest class.
fn class_for_request(cap: usize) -> Option<usize> {
    let cap = cap.max(MIN_CLASS);
    if cap > MAX_CLASS {
        return None;
    }
    let class = usize::BITS - (cap - 1).leading_zeros(); // ceil(log2(cap))
    Some(class as usize - MIN_CLASS.trailing_zeros() as usize)
}

/// Index of the largest class whose capacity is ≤ `cap` — where a returned
/// buffer of capacity `cap` can safely serve future requests of that class.
fn class_for_return(cap: usize) -> Option<usize> {
    if cap < MIN_CLASS {
        return None;
    }
    let class = (usize::BITS - 1 - cap.leading_zeros()) as usize; // floor(log2(cap))
    Some((class - MIN_CLASS.trailing_zeros() as usize).min(N_CLASSES - 1))
}

fn class_capacity(idx: usize) -> usize {
    MIN_CLASS << idx
}

impl BufferPool {
    /// An empty pool behind an [`Arc`], ready to share.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// An empty buffer with capacity ≥ `min_cap`, recycled if possible.
    pub fn get(self: &Arc<Self>, min_cap: usize) -> PooledBuf {
        self.gets.fetch_add(1, Ordering::Relaxed);
        if let Some(idx) = class_for_request(min_cap) {
            if let Some(mut v) = self.classes[idx].lock().pop() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                return PooledBuf {
                    data: v,
                    pool: Some(self.clone()),
                };
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            return PooledBuf {
                data: Vec::with_capacity(class_capacity(idx)),
                pool: Some(self.clone()),
            };
        }
        // Oversized: heap-backed, still tracked so the drop is counted.
        self.misses.fetch_add(1, Ordering::Relaxed);
        PooledBuf {
            data: Vec::with_capacity(min_cap),
            pool: Some(self.clone()),
        }
    }

    /// A zero-filled buffer of exactly `len` bytes (the pooled analogue of
    /// `vec![0u8; len]`, for landings that are written by `recv_into`).
    pub fn take(self: &Arc<Self>, len: usize) -> PooledBuf {
        let mut b = self.get(len);
        b.data.resize(len, 0);
        b
    }

    /// Re-attach an arbitrary `Vec` (e.g. one received from a conduit) so
    /// that dropping it feeds the pool instead of the heap.
    pub fn adopt(self: &Arc<Self>, data: Vec<u8>) -> PooledBuf {
        PooledBuf {
            data,
            pool: Some(self.clone()),
        }
    }

    fn put(&self, data: Vec<u8>) {
        match class_for_return(data.capacity()) {
            Some(idx) if data.capacity() <= MAX_CLASS => {
                let mut free = self.classes[idx].lock();
                if free.len() < MAX_RETAINED {
                    free.push(data);
                    self.recycled.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            _ => {}
        }
        self.discarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }
}

/// An owned byte buffer that returns to its [`BufferPool`] on drop.
///
/// Dereferences to `[u8]`; use [`PooledBuf::vec`] for `Vec` mutators
/// (`extend_from_slice`, `resize`, …). A `PooledBuf` built with
/// [`From<Vec<u8>>`] has no pool and drops to the heap like any `Vec` —
/// that keeps non-pooled call sites (tests, one-shot paths) working with
/// the same types.
#[derive(Debug, Default)]
pub struct PooledBuf {
    data: Vec<u8>,
    pool: Option<Arc<BufferPool>>,
}

impl PooledBuf {
    /// The underlying `Vec`, for growth and truncation in place.
    pub fn vec(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Detach from the pool, keeping the bytes (the buffer will no longer
    /// be recycled).
    pub fn detach(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.data)
    }
}

impl From<Vec<u8>> for PooledBuf {
    fn from(data: Vec<u8>) -> Self {
        PooledBuf { data, pool: None }
    }
}

impl Clone for PooledBuf {
    /// Clones the bytes, not the pool attachment: the copy drops to the
    /// heap. Cloning is off the hot path by design.
    fn clone(&self) -> Self {
        PooledBuf {
            data: self.data.clone(),
            pool: None,
        }
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for PooledBuf {}

impl std::borrow::Borrow<[u8]> for PooledBuf {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_within_class() {
        let pool = BufferPool::new();
        let mut b = pool.get(100);
        b.vec().extend_from_slice(&[1, 2, 3]);
        let cap = b.vec().capacity();
        drop(b);
        let mut b2 = pool.get(100);
        assert_eq!(b2.vec().capacity(), cap, "same buffer back");
        assert_eq!(b2.len(), 0, "recycled buffer comes back cleared");
        let st = pool.stats();
        assert_eq!(st.gets, 2);
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.recycled, 1);
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_for_request(0), Some(0));
        assert_eq!(class_for_request(64), Some(0));
        assert_eq!(class_for_request(65), Some(1));
        assert_eq!(class_for_request(128), Some(1));
        assert_eq!(class_for_request(MAX_CLASS), Some(N_CLASSES - 1));
        assert_eq!(class_for_request(MAX_CLASS + 1), None);
        assert_eq!(class_for_return(63), None);
        assert_eq!(class_for_return(64), Some(0));
        assert_eq!(class_for_return(127), Some(0));
        assert_eq!(class_for_return(128), Some(1));
    }

    #[test]
    fn take_zero_fills() {
        let pool = BufferPool::new();
        let mut b = pool.take(100);
        b[99] = 7;
        drop(b);
        let b2 = pool.take(100);
        assert_eq!(b2.len(), 100);
        assert!(b2.iter().all(|&x| x == 0), "recycled take() re-zeroes");
    }

    #[test]
    fn adopt_recycles_foreign_vec() {
        let pool = BufferPool::new();
        drop(pool.adopt(Vec::with_capacity(256)));
        assert_eq!(pool.stats().recycled, 1);
        let mut b = pool.get(200);
        assert_eq!(pool.stats().hits, 1, "adopted buffer serves a get");
        assert!(b.vec().capacity() >= 200);
    }

    #[test]
    fn oversized_discarded() {
        let pool = BufferPool::new();
        drop(pool.get(MAX_CLASS + 1));
        let st = pool.stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.discarded, 1);
        assert_eq!(st.recycled, 0);
    }

    #[test]
    fn retention_cap() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..MAX_RETAINED + 5).map(|_| pool.get(64)).collect();
        drop(bufs);
        let st = pool.stats();
        assert_eq!(st.recycled, MAX_RETAINED as u64);
        assert_eq!(st.discarded, 5);
    }

    #[test]
    fn unpooled_from_vec() {
        let b: PooledBuf = vec![1u8, 2, 3].into();
        assert_eq!(&*b, &[1, 2, 3]);
        let v = b.detach();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
