//! A warmup + median-of-N wall-clock timing harness for `harness = false`
//! bench targets.
//!
//! Criterion-shaped where it matters (`Harness::group`, `sample_size`,
//! `throughput_bytes`, `Bencher::iter`) and deliberately smaller: no
//! statistics beyond min/median/max, no HTML, no state directory. Medians
//! over N samples resist scheduler noise well enough for the regression
//! checks this repo runs. Full measurement happens only under `cargo bench`
//! (the one invocation that passes `--bench`); run any other way — e.g.
//! `cargo test --benches`, which passes no flag at all — each benchmark
//! executes exactly once as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Wall-clock target for the warmup phase.
const WARMUP_TARGET: Duration = Duration::from_millis(100);
/// Wall-clock target for each timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(50);

/// Top-level bench runner; parses CLI args (an optional substring filter,
/// plus cargo's `--bench`/`--test` flags).
pub struct Harness {
    filter: Option<String>,
    test_mode: bool,
}

impl Harness {
    /// Build from `std::env::args`.
    pub fn from_env() -> Self {
        let mut filter = None;
        let mut bench_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if a.starts_with("--") => {} // ignore unknown cargo flags
                a => filter = Some(a.to_string()),
            }
        }
        Harness {
            filter,
            test_mode: !bench_mode,
        }
    }

    /// Start a named group of benchmarks.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            harness: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput_bytes: None,
        }
    }
}

/// A named set of benchmarks sharing sample-count and throughput settings.
pub struct Group<'h> {
    harness: &'h Harness,
    name: String,
    sample_size: usize,
    throughput_bytes: Option<u64>,
}

impl Group<'_> {
    /// Number of timed samples (default 20). Lower it for slow benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare how many payload bytes one iteration moves, enabling the
    /// MB/s column. Pass 0 to clear.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = (bytes > 0).then_some(bytes);
        self
    }

    /// Run one benchmark. `id` extends the group name (`group/id`).
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.harness.test_mode,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        if self.harness.test_mode {
            println!("{full}: ok (smoke)");
            return;
        }
        b.report(&full, self.throughput_bytes);
    }

    /// No-op, for call-site symmetry with criterion.
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`: warm up, pick an iteration count that fills a sample
    /// window, then record `sample_size` timed samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }

        // Warmup: run until the target is spent, estimating per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let iters_per_sample = ((SAMPLE_TARGET.as_nanos() as f64 / est_ns) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str, throughput_bytes: Option<u64>) {
        let mut sorted = self.samples_ns.clone();
        if sorted.is_empty() {
            println!("{name}: no measurement (Bencher::iter never called)");
            return;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        let mut line = format!(
            "{name:<44} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        if let Some(bytes) = throughput_bytes {
            let mbps = bytes as f64 / (median / 1e9) / 1e6;
            line.push_str(&format!("  thrpt: {mbps:.1} MB/s"));
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut h = Harness {
            filter: None,
            test_mode: true,
        };
        let mut count = 0;
        let mut g = h.group("g");
        g.bench_function("one", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = Harness {
            filter: Some("wanted".into()),
            test_mode: true,
        };
        let mut ran = Vec::new();
        let mut g = h.group("g");
        g.bench_function("wanted_bench", |b| b.iter(|| ran.push("a")));
        g.bench_function("other", |b| b.iter(|| ran.push("b")));
        assert_eq!(ran, ["a"]);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.0), "12.0ns");
        assert_eq!(fmt_ns(12_300.0), "12.30us");
        assert_eq!(fmt_ns(12_300_000.0), "12.30ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500s");
    }
}
