//! A seedable, deterministic PRNG for workload generation.
//!
//! SplitMix64 (Steele, Lea, Flood 2014): one u64 of state, a Weyl-sequence
//! step and a 64-bit finalizer per output. Not cryptographic — it exists to
//! generate reproducible traffic schedules and property-test inputs, where
//! "same seed, same workload, on every machine, forever" is the actual
//! requirement (the `rand` crate's `StdRng` deliberately does not promise
//! stream stability across versions; this one does).

use std::ops::Range;

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A seedable SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Any seed is fine, including zero.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fork an independent generator (seeded from this one's stream), so a
    /// sub-task can consume randomness without perturbing the parent's
    /// sequence position.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Uniform in `[0, bound)` without modulo bias (Lemire's method).
    /// `bound` must be non-zero.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform sample from a half-open range. Panics on an empty range.
    ///
    /// Implemented for the integer types used in this workspace and for
    /// `f64` (uniform over `[lo, hi)`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fill `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.bounded_u64(items.len() as u64) as usize])
        }
    }
}

/// A range [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.bounded_u64(span) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // SplitMix64 with seed 1234567: first outputs of the reference
        // implementation. Guards against accidental algorithm drift — the
        // whole point of an in-tree PRNG is that these never change.
        let mut rng = Rng::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Rng::new(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // 13 bytes from two words; the tail must be written too (the odds
        // of five trailing zero bytes from a correct fill are ~2^-40).
        assert!(buf[8..].iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(99);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
