//! A cheaply-cloneable, sliceable byte buffer.
//!
//! [`Bytes`] is a shared owner (`Arc<[u8]>`) plus a range. Cloning and
//! slicing are O(1) and never copy payload — the property the drivers want
//! when one received packet fans out to several consumers (e.g. a gateway
//! relaying a fragment while the local unpack still holds it).

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable byte buffer sharing its storage with all clones and slices.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (allocates nothing of note).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Take ownership of `data` without copying.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if this view covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this view. O(1); panics if the range is out of bounds
    /// or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {} bytes",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest in
    /// `self`. O(1); panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Split off and return the bytes from `at` onward, leaving the prefix
    /// in `self`. O(1); panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// View as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy this view out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from_vec((0u8..32).collect());
        let mid = b.slice(8..24);
        assert_eq!(mid.len(), 16);
        assert_eq!(mid[0], 8);
        let sub = mid.slice(4..);
        assert_eq!(sub[0], 12);
        assert_eq!(sub.len(), 12);

        let mut rest = b.clone();
        let head = rest.split_to(10);
        assert_eq!(head.as_slice(), &(0u8..10).collect::<Vec<_>>()[..]);
        assert_eq!(rest[0], 10);
        let tail = rest.split_off(2);
        assert_eq!(rest.as_slice(), &[10, 11]);
        assert_eq!(tail[0], 12);
        // The original view is untouched by the splits.
        assert_eq!(b.len(), 32);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::copy_from_slice(&[1, 2, 3]).slice(1..5);
    }

    #[test]
    fn equality_ignores_provenance() {
        let a = Bytes::from_vec(vec![9, 9, 1, 2, 3]).slice(2..);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(&a[..], &[1, 2, 3]);
    }
}
