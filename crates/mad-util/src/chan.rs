//! Bounded and unbounded MPMC channels.
//!
//! Covers the `crossbeam::channel` surface this workspace needs: cloneable
//! `Sender`/`Receiver` halves, blocking `send`/`recv`, non-blocking `try_*`
//! variants, `recv_timeout`, and disconnect semantics (a send fails once
//! every receiver is gone; a recv fails once every sender is gone *and* the
//! queue is drained). There is deliberately no `select!`: the Madeleine
//! runtime multiplexes with `RtEvent` epochs instead, so this module stays
//! a plain monitor (mutex + two condvars) — simple enough to reason about
//! under both real threads and the virtual-time runtime's grace periods.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{Condvar, Mutex};

/// The receiving side disconnected; the unsent value is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

/// Outcome of a failed [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "sending on a full channel",
            TrySendError::Disconnected(_) => "sending on a channel with no receivers",
        })
    }
}

/// Every sender disconnected and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on a channel with no senders")
    }
}

/// Outcome of a failed [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TryRecvError::Empty => "receiving on an empty channel",
            TryRecvError::Disconnected => "receiving on a channel with no senders",
        })
    }
}

/// Outcome of a failed [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing queued.
    Timeout,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecvTimeoutError::Timeout => "timed out receiving on an empty channel",
            RecvTimeoutError::Disconnected => "receiving on a channel with no senders",
        })
    }
}

macro_rules! impl_error {
    ($($ty:ty),+) => {$(
        impl std::error::Error for $ty {}
    )+};
}
impl_error!(RecvError, TryRecvError, RecvTimeoutError);

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Signaled on push and on last-sender disconnect.
    not_empty: Condvar,
    /// Signaled on pop and on last-receiver disconnect.
    not_full: Condvar,
    /// `usize::MAX` means unbounded.
    capacity: usize,
}

/// Create an unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

/// Create a bounded channel holding at most `capacity` queued items.
/// A zero capacity is rounded up to one (this module has no rendezvous
/// mode; nothing in the workspace wants one).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(capacity.max(1))
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Producer half. Cloning adds a producer; the channel disconnects for
/// receivers once the last clone is dropped.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Queue `value`, blocking while a bounded channel is at capacity.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < self.inner.capacity {
                st.queue.push_back(value);
                drop(st);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            self.inner.not_full.wait(&mut st);
        }
    }

    /// Queue `value` only if there is room right now.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.inner.state.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if st.queue.len() >= self.inner.capacity {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of items queued right now.
    pub fn len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// True if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Blocked receivers must observe the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// Consumer half. Cloning adds a consumer; the channel disconnects for
/// senders once the last clone is dropped.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Dequeue the oldest item, blocking until one arrives or every sender
    /// is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            self.inner.not_empty.wait(&mut st);
        }
    }

    /// Dequeue the oldest item if one is queued right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock();
        match st.queue.pop_front() {
            Some(v) => {
                drop(st);
                self.inner.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeue the oldest item, giving up after `timeout` of emptiness.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            self.inner.not_empty.wait_for(&mut st, deadline - now);
        }
    }

    /// Number of items queued right now.
    pub fn len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// True if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Blocked (bounded) senders must observe the disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking iterator over received items; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}
