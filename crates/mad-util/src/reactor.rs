//! A std-only readiness reactor: poll-driven tasks on a fixed worker pool.
//!
//! Thread-per-link engines burn two OS threads per gateway direction plus
//! one per TCP conduit, which caps how many channels and tenants one node
//! can host. This module provides the alternative core: tasks implement
//! [`PollTask`] (a non-blocking state-machine step), a [`Reactor`] keeps a
//! ready queue and a timer wheel, and a *small, fixed* set of worker
//! threads drains them. Blocking waits become timers plus re-polls.
//!
//! ## Parking, and why there are no per-event wakers
//!
//! The reactor is built over the workspace's one blocking primitive: an
//! epoch counter threads can block on (`RtEvent` in `madeleine`,
//! `vtime::Signal` under the simulator). The [`Park`] trait maps onto it
//! 1:1 — `prepare` reads the epoch, `park` blocks until it moves, `unpark`
//! bumps it. One park instance backs one reactor.
//!
//! An epoch counter cannot say *which* task's input arrived, so the
//! reactor uses **stir semantics**: whenever the park epoch moves, every
//! idle task is marked ready and re-polled. A well-formed task's poll is
//! cheap when nothing is pending (a few non-blocking readiness checks), so
//! a stir costs microseconds — and in exchange the reactor needs no waker
//! plumbing through channels, ledgers, and conduits, all of which already
//! bump their node's event on activity. [`Waker`]s still exist for
//! targeted wake-ups (tests, external drivers), they are just not
//! required for correctness.
//!
//! ## Virtual time
//!
//! Nothing here names `Instant` or `std::thread`: time comes from
//! [`Park::now_ns`] and blocking from [`Park::park_timeout`], so a park
//! implementation backed by a virtual clock (the simulator's signal +
//! virtual deadline waits) makes the whole reactor virtual-time aware.
//! Workers must then run as clock actors; the reactor itself never spawns
//! threads — callers loop [`Reactor::run_worker`] on threads they own.
//!
//! ## Lifecycle
//!
//! Tasks finish by returning [`Poll::Ready`] (the reactor drops them, so
//! RAII guards inside the task run) or by panicking (the panic payload is
//! captured for [`Reactor::take_panic`]; the task is dropped the same
//! way). Workers run until [`Reactor::shutdown`], not until the task list
//! is empty — a reactor is a long-lived service that outlives any one
//! task. [`Reactor::drain_tasks`] drops whatever is still alive at
//! shutdown so their guards run too.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crate::sync::{Condvar, Mutex};

/// Result of one task poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// The task is finished; the reactor drops it.
    Ready,
    /// The task is waiting for input (a stir, a wake, or a timer).
    Pending,
}

/// Per-poll context: the current time plus the task's wake-up requests.
#[derive(Debug)]
pub struct Context {
    now_ns: u64,
    wake_at: Option<u64>,
    yielded: bool,
}

impl Context {
    fn new(now_ns: u64) -> Self {
        Context {
            now_ns,
            wake_at: None,
            yielded: false,
        }
    }

    /// The reactor's clock at poll time (from [`Park::now_ns`]).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Ask to be re-polled at `deadline_ns` (absolute, same clock as
    /// [`Context::now_ns`]) even if no event arrives before then — the
    /// reactor analog of a deadline-bounded blocking wait. The earliest
    /// of several requests in one poll wins. A stir or wake before the
    /// deadline re-polls sooner and cancels the timer.
    pub fn wake_at(&mut self, deadline_ns: u64) {
        self.wake_at = Some(match self.wake_at {
            Some(d) => d.min(deadline_ns),
            None => deadline_ns,
        });
    }

    /// Ask to be re-polled immediately after other ready tasks run — the
    /// fairness yield of a task with more input than one poll budget.
    pub fn yield_now(&mut self) {
        self.yielded = true;
    }
}

/// A non-blocking state-machine step. `poll` must never block: it makes
/// whatever progress non-blocking operations allow, records timers on the
/// context, and returns. It is called from reactor workers (one at a time
/// per task, but possibly a different worker each time).
pub trait PollTask: Send {
    /// Advance the task. See the trait docs for the contract.
    fn poll(&mut self, cx: &mut Context) -> Poll;
}

/// The blocking substrate of one reactor: an epoch counter with a clock.
/// `prepare` must be called *before* inspecting shared state and the token
/// passed to `park`, so a bump between the check and the park wakes it
/// immediately (the classic lost-wake-up protocol).
pub trait Park: Send + Sync {
    /// Monotonic nanoseconds; timers live on this clock.
    fn now_ns(&self) -> u64;
    /// Read the current epoch (the park token).
    fn prepare(&self) -> u64;
    /// Block until the epoch exceeds `token`.
    fn park(&self, token: u64);
    /// Block until the epoch exceeds `token` or `timeout_ns` elapses.
    fn park_timeout(&self, token: u64, timeout_ns: u64);
    /// Bump the epoch, waking all parked workers.
    fn unpark(&self);
}

/// A [`Park`] over `std` condvars and `Instant` — the real-time substrate,
/// and the one the reactor's own tests use.
pub struct StdPark {
    epoch: Mutex<u64>,
    cv: Condvar,
    start: Instant,
}

impl Default for StdPark {
    fn default() -> Self {
        StdPark {
            epoch: Mutex::new(0),
            cv: Condvar::new(),
            start: Instant::now(),
        }
    }
}

impl StdPark {
    /// A fresh park with its own clock epoch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Park for StdPark {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn prepare(&self) -> u64 {
        *self.epoch.lock()
    }

    fn park(&self, token: u64) {
        let mut e = self.epoch.lock();
        while *e <= token {
            self.cv.wait(&mut e);
        }
    }

    fn park_timeout(&self, token: u64, timeout_ns: u64) {
        let deadline = Instant::now() + Duration::from_nanos(timeout_ns);
        let mut e = self.epoch.lock();
        while *e <= token {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let res = self.cv.wait_for(&mut e, deadline - now);
            if res.timed_out() {
                return;
            }
        }
    }

    fn unpark(&self) {
        let mut e = self.epoch.lock();
        *e += 1;
        self.cv.notify_all();
    }
}

/// Identifier of a spawned task (its slot index plus a generation, so a
/// stale waker cannot poke a recycled slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskId {
    slot: usize,
    generation: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Waiting for a stir, wake, or timer.
    Idle,
    /// Queued in the ready list.
    Queued,
    /// A worker holds the task and is polling it. `rearm` records a wake
    /// that arrived mid-poll, so the poll result re-queues instead of
    /// idling (the wake would otherwise be lost).
    Running { rearm: bool },
    /// Empty slot, reusable.
    Vacant,
}

struct Slot {
    task: Option<Box<dyn PollTask>>,
    state: SlotState,
    generation: u64,
    /// Key of this task's entry in the timer wheel, if armed.
    timer: Option<(u64, u64)>,
}

struct Sched {
    slots: Vec<Slot>,
    ready: VecDeque<usize>,
    /// Timer wheel: (absolute deadline ns, tiebreak seq) → slot. A
    /// `BTreeMap` keeps the earliest deadline first.
    timers: BTreeMap<(u64, u64), usize>,
    timer_seq: u64,
    live: usize,
    spawned_total: u64,
    shutdown: bool,
    /// Last park epoch a worker has already stirred for; a newer epoch
    /// means external activity since, so idle tasks get re-polled.
    stirred_epoch: Option<u64>,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Sched {
    /// Move every idle task to the ready queue (see module docs on stir
    /// semantics). Tasks mid-poll get their rearm flag instead.
    fn stir(&mut self) {
        for idx in 0..self.slots.len() {
            match self.slots[idx].state {
                SlotState::Idle => {
                    self.make_ready(idx);
                }
                SlotState::Running { .. } => {
                    self.slots[idx].state = SlotState::Running { rearm: true };
                }
                SlotState::Queued | SlotState::Vacant => {}
            }
        }
    }

    fn make_ready(&mut self, idx: usize) {
        if let Some(key) = self.slots[idx].timer.take() {
            self.timers.remove(&key);
        }
        self.slots[idx].state = SlotState::Queued;
        self.ready.push_back(idx);
    }

    /// Fire every timer at or before `now`.
    fn expire_timers(&mut self, now: u64) {
        while let Some((&key, &idx)) = self.timers.iter().next() {
            if key.0 > now {
                break;
            }
            self.timers.remove(&key);
            self.slots[idx].timer = None;
            match self.slots[idx].state {
                SlotState::Idle => {
                    self.slots[idx].state = SlotState::Queued;
                    self.ready.push_back(idx);
                }
                SlotState::Running { .. } => {
                    self.slots[idx].state = SlotState::Running { rearm: true };
                }
                SlotState::Queued | SlotState::Vacant => {}
            }
        }
    }

    fn next_deadline(&self) -> Option<u64> {
        self.timers.keys().next().map(|&(d, _)| d)
    }
}

/// A readiness reactor over one [`Park`]. See the module docs.
pub struct Reactor {
    park: Arc<dyn Park>,
    state: Mutex<Sched>,
    /// Optional poll-duration sink: when set, every task poll records
    /// its wall (or virtual) duration. A `OnceLock` keeps the disabled
    /// path at one relaxed load, with no lock and no clock reads.
    poll_hist: std::sync::OnceLock<Arc<crate::hist::AtomicHistogram>>,
}

impl Reactor {
    /// A reactor parked on `park`.
    pub fn new(park: Arc<dyn Park>) -> Arc<Self> {
        Arc::new(Reactor {
            park,
            poll_hist: std::sync::OnceLock::new(),
            state: Mutex::new(Sched {
                slots: Vec::new(),
                ready: VecDeque::new(),
                timers: BTreeMap::new(),
                timer_seq: 0,
                live: 0,
                spawned_total: 0,
                shutdown: false,
                stirred_epoch: None,
                panic: None,
            }),
        })
    }

    /// The reactor's park (for callers that want to feed its clock or
    /// poke it from outside).
    pub fn park(&self) -> &Arc<dyn Park> {
        &self.park
    }

    /// Add a task; it is queued for an immediate first poll.
    pub fn spawn(&self, task: Box<dyn PollTask>) -> TaskId {
        let id = {
            let mut st = self.state.lock();
            assert!(!st.shutdown, "spawning on a shut-down reactor");
            st.live += 1;
            st.spawned_total += 1;
            let slot = st
                .slots
                .iter()
                .position(|s| matches!(s.state, SlotState::Vacant));
            let idx = match slot {
                Some(idx) => {
                    st.slots[idx].task = Some(task);
                    st.slots[idx].generation += 1;
                    idx
                }
                None => {
                    st.slots.push(Slot {
                        task: Some(task),
                        state: SlotState::Vacant,
                        generation: 0,
                        timer: None,
                    });
                    st.slots.len() - 1
                }
            };
            st.make_ready(idx);
            TaskId {
                slot: idx,
                generation: st.slots[idx].generation,
            }
        };
        self.park.unpark();
        id
    }

    /// A handle that re-polls one task on demand.
    pub fn waker(self: &Arc<Self>, id: TaskId) -> Waker {
        Waker {
            reactor: Arc::downgrade(self),
            id,
        }
    }

    /// Mark every idle task ready and wake the workers — the external
    /// "something happened" signal for event sources that cannot name a
    /// task.
    pub fn stir(&self) {
        self.state.lock().stir();
        self.park.unpark();
    }

    /// Tasks alive right now (spawned, not yet finished).
    pub fn live_tasks(&self) -> usize {
        self.state.lock().live
    }

    /// Tasks ever spawned on this reactor.
    pub fn spawned_total(&self) -> u64 {
        self.state.lock().spawned_total
    }

    /// Ask every worker to return from [`Reactor::run_worker`].
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.park.unpark();
    }

    /// Drop every remaining task (running their destructors); used after
    /// shutdown so RAII guards inside abandoned tasks still run. Returns
    /// how many were dropped.
    pub fn drain_tasks(&self) -> usize {
        let taken: Vec<Box<dyn PollTask>> = {
            let mut st = self.state.lock();
            let mut out = Vec::new();
            for idx in 0..st.slots.len() {
                if let Some(task) = st.slots[idx].task.take() {
                    if let Some(key) = st.slots[idx].timer.take() {
                        st.timers.remove(&key);
                    }
                    st.slots[idx].state = SlotState::Vacant;
                    st.live -= 1;
                    out.push(task);
                }
            }
            st.ready.clear();
            out
        };
        let n = taken.len();
        drop(taken); // destructors run outside the scheduler lock
        n
    }

    /// The first panic payload captured from a task poll, if any.
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.state.lock().panic.take()
    }

    /// Record every future task-poll duration (in this park's clock
    /// domain, nanoseconds) into `hist`. First caller wins; later calls
    /// are ignored — the hook is set once at wiring time, before
    /// workers observe meaningful load.
    pub fn set_poll_histogram(&self, hist: Arc<crate::hist::AtomicHistogram>) {
        let _ = self.poll_hist.set(hist);
    }

    fn wake_slot(&self, id: TaskId) {
        {
            let mut st = self.state.lock();
            let Some(slot) = st.slots.get(id.slot) else {
                return;
            };
            if slot.generation != id.generation {
                return; // stale waker for a recycled slot
            }
            match slot.state {
                SlotState::Idle => st.make_ready(id.slot),
                SlotState::Running { .. } => {
                    st.slots[id.slot].state = SlotState::Running { rearm: true };
                }
                SlotState::Queued | SlotState::Vacant => {}
            }
        }
        self.park.unpark();
    }

    /// Drive the reactor until [`Reactor::shutdown`]. Call from one or
    /// more dedicated threads (clock actors, under a virtual-time park).
    pub fn run_worker(&self) {
        loop {
            // The token is read before the state check: an unpark between
            // the check and the park moves the epoch past the token, so
            // the park returns immediately instead of losing the wake.
            let token = self.park.prepare();
            let now = self.park.now_ns();
            let grabbed = {
                let mut st = self.state.lock();
                if st.shutdown {
                    return;
                }
                if st.stirred_epoch != Some(token) {
                    st.stirred_epoch = Some(token);
                    st.stir();
                }
                st.expire_timers(now);
                loop {
                    match st.ready.pop_front() {
                        Some(idx) => {
                            if !matches!(st.slots[idx].state, SlotState::Queued) {
                                continue; // drained or vacated since queueing
                            }
                            match st.slots[idx].task.take() {
                                Some(task) => {
                                    st.slots[idx].state = SlotState::Running { rearm: false };
                                    break Some((idx, task));
                                }
                                None => continue,
                            }
                        }
                        None => break None,
                    }
                }
            };
            let Some((idx, mut task)) = grabbed else {
                let deadline = self.state.lock().next_deadline();
                match deadline {
                    None => self.park.park(token),
                    Some(d) => {
                        let now = self.park.now_ns();
                        if d > now {
                            self.park.park_timeout(token, d - now);
                        }
                        // A due deadline skips the park: next turn fires it.
                    }
                }
                continue;
            };
            let mut cx = Context::new(now);
            let hist = self.poll_hist.get();
            let poll_start = hist.map(|_| self.park.now_ns());
            let polled =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.poll(&mut cx)));
            if let (Some(hist), Some(start)) = (hist, poll_start) {
                hist.record(self.park.now_ns().saturating_sub(start));
            }
            match polled {
                Ok(Poll::Pending) => {
                    let mut st = self.state.lock();
                    st.slots[idx].task = Some(task);
                    let rearmed = matches!(st.slots[idx].state, SlotState::Running { rearm: true });
                    if rearmed || cx.yielded {
                        st.make_ready(idx);
                    } else {
                        st.slots[idx].state = SlotState::Idle;
                        if let Some(deadline) = cx.wake_at {
                            let seq = st.timer_seq;
                            st.timer_seq += 1;
                            st.slots[idx].timer = Some((deadline, seq));
                            st.timers.insert((deadline, seq), idx);
                        }
                    }
                }
                Ok(Poll::Ready) | Err(_) => {
                    {
                        let mut st = self.state.lock();
                        st.slots[idx].state = SlotState::Vacant;
                        st.live -= 1;
                        if let Err(payload) = polled {
                            st.panic.get_or_insert(payload);
                        }
                    }
                    drop(task); // destructors run outside the scheduler lock
                                // A finished task can be what another task (or an
                                // external joiner) waits on: make the change visible.
                    self.park.unpark();
                }
            }
        }
    }
}

/// A targeted wake-up handle for one task. Cheap to clone; stale wakers
/// (task finished, slot recycled) are silently inert.
#[derive(Clone)]
pub struct Waker {
    reactor: Weak<Reactor>,
    id: TaskId,
}

impl Waker {
    /// Re-poll the task (immediately if idle; once more if mid-poll).
    pub fn wake(&self) {
        if let Some(r) = self.reactor.upgrade() {
            r.wake_slot(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn reactor() -> Arc<Reactor> {
        Reactor::new(Arc::new(StdPark::new()))
    }

    fn with_worker<T>(r: &Arc<Reactor>, body: impl FnOnce() -> T) -> T {
        let rc = r.clone();
        let worker = std::thread::spawn(move || rc.run_worker());
        let out = body();
        r.shutdown();
        worker.join().unwrap();
        out
    }

    struct CountDown {
        left: usize,
        polls: Arc<AtomicUsize>,
    }

    impl PollTask for CountDown {
        fn poll(&mut self, _cx: &mut Context) -> Poll {
            self.polls.fetch_add(1, Ordering::SeqCst);
            if self.left == 0 {
                return Poll::Ready;
            }
            self.left -= 1;
            Poll::Pending
        }
    }

    #[test]
    fn stir_polls_idle_tasks_to_completion() {
        let r = reactor();
        let polls = Arc::new(AtomicUsize::new(0));
        r.spawn(Box::new(CountDown {
            left: 3,
            polls: polls.clone(),
        }));
        with_worker(&r, || {
            let mut spins = 0;
            while r.live_tasks() > 0 {
                r.stir();
                std::thread::sleep(Duration::from_millis(1));
                spins += 1;
                assert!(spins < 1000, "task never finished");
            }
        });
        assert_eq!(polls.load(Ordering::SeqCst), 4);
        assert_eq!(r.spawned_total(), 1);
    }

    struct TimerTask {
        armed: Option<u64>,
        fired_at: Arc<Mutex<Option<u64>>>,
        delay_ns: u64,
    }

    impl PollTask for TimerTask {
        fn poll(&mut self, cx: &mut Context) -> Poll {
            match self.armed {
                None => {
                    self.armed = Some(cx.now_ns());
                    cx.wake_at(cx.now_ns() + self.delay_ns);
                    Poll::Pending
                }
                Some(at) => {
                    if cx.now_ns() < at + self.delay_ns {
                        // Stirred early: re-arm and keep waiting.
                        cx.wake_at(at + self.delay_ns);
                        return Poll::Pending;
                    }
                    *self.fired_at.lock() = Some(cx.now_ns() - at);
                    Poll::Ready
                }
            }
        }
    }

    #[test]
    fn timer_fires_without_external_wakes() {
        let r = reactor();
        let fired = Arc::new(Mutex::new(None));
        r.spawn(Box::new(TimerTask {
            armed: None,
            fired_at: fired.clone(),
            delay_ns: 20_000_000,
        }));
        with_worker(&r, || {
            let t0 = Instant::now();
            while r.live_tasks() > 0 {
                std::thread::sleep(Duration::from_millis(1));
                assert!(t0.elapsed() < Duration::from_secs(5), "timer never fired");
            }
        });
        let elapsed = fired.lock().expect("timer fired");
        assert!(elapsed >= 20_000_000, "fired after {elapsed}ns, too early");
    }

    #[test]
    fn waker_targets_one_task() {
        let r = reactor();
        let polls = Arc::new(AtomicUsize::new(0));
        let id = r.spawn(Box::new(CountDown {
            left: 1,
            polls: polls.clone(),
        }));
        let waker = r.waker(id);
        with_worker(&r, || {
            // First poll happens on spawn; the wake finishes it.
            let t0 = Instant::now();
            while polls.load(Ordering::SeqCst) < 1 {
                std::thread::sleep(Duration::from_millis(1));
                assert!(t0.elapsed() < Duration::from_secs(5));
            }
            waker.wake();
            while r.live_tasks() > 0 {
                std::thread::sleep(Duration::from_millis(1));
                assert!(t0.elapsed() < Duration::from_secs(5));
            }
        });
        assert_eq!(polls.load(Ordering::SeqCst), 2);
        waker.wake(); // stale: must be inert
    }

    struct Panicker;

    impl PollTask for Panicker {
        fn poll(&mut self, _cx: &mut Context) -> Poll {
            panic!("task exploded");
        }
    }

    #[test]
    fn panic_is_captured_and_task_dropped() {
        let r = reactor();
        r.spawn(Box::new(Panicker));
        with_worker(&r, || {
            let t0 = Instant::now();
            while r.live_tasks() > 0 {
                std::thread::sleep(Duration::from_millis(1));
                assert!(t0.elapsed() < Duration::from_secs(5));
            }
        });
        let payload = r.take_panic().expect("panic captured");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task exploded");
    }

    struct NeverDone;

    impl PollTask for NeverDone {
        fn poll(&mut self, _cx: &mut Context) -> Poll {
            Poll::Pending
        }
    }

    #[test]
    fn drain_drops_remaining_tasks() {
        let r = reactor();
        r.spawn(Box::new(NeverDone));
        r.spawn(Box::new(NeverDone));
        with_worker(&r, || {
            std::thread::sleep(Duration::from_millis(5));
        });
        assert_eq!(r.live_tasks(), 2);
        assert_eq!(r.drain_tasks(), 2);
        assert_eq!(r.live_tasks(), 0);
    }

    #[test]
    fn many_tasks_many_workers() {
        let r = reactor();
        let polls = Arc::new(AtomicUsize::new(0));
        for left in 0..40 {
            r.spawn(Box::new(CountDown {
                left: left % 5,
                polls: polls.clone(),
            }));
        }
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rc = r.clone();
                std::thread::spawn(move || rc.run_worker())
            })
            .collect();
        let t0 = Instant::now();
        while r.live_tasks() > 0 {
            r.stir();
            std::thread::sleep(Duration::from_millis(1));
            assert!(t0.elapsed() < Duration::from_secs(10), "tasks stuck");
        }
        r.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(r.spawned_total(), 40);
    }
}
