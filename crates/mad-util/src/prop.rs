//! A small deterministic property-testing harness.
//!
//! The shape is quickcheck's, the determinism contract is stronger: every
//! run of a property draws its cases from [`crate::rng::Rng`] streams
//! derived from a fixed seed, so a failure reported on one machine replays
//! bit-identically on any other. A failing input is greedily shrunk via the
//! [`Shrink`] trait and reported with its case seed; re-running reproduces
//! it without any side-channel state file (the `proptest-regressions`
//! format this replaces). Regressions worth keeping are instead promoted to
//! named `#[test]` functions that call the property directly.
//!
//! Shrinking is type-directed, not generator-directed: a shrunk candidate
//! may fall outside the generator's bounds. Properties should tolerate (or
//! cheaply reject) such inputs, or the test should implement [`Shrink`] on
//! a wrapper type that respects its invariants.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::Rng;

/// How a property run is sized and seeded.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Root seed; every case seed derives from it deterministically.
    pub seed: u64,
    /// Upper bound on accepted shrink steps.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    /// 64 cases from a fixed seed. `MAD_PROP_CASES` and `MAD_PROP_SEED`
    /// (decimal or `0x`-hex) override, for soak runs and failure replay.
    fn default() -> Self {
        let parse = |name: &str| -> Option<u64> {
            let v = std::env::var(name).ok()?;
            match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        };
        Config {
            cases: parse("MAD_PROP_CASES").map_or(64, |v| v as u32),
            seed: parse("MAD_PROP_SEED").unwrap_or(0x4D41_4445_4C45_494E), // "MADELEIN"
            max_shrink_steps: 400,
        }
    }
}

impl Config {
    /// Same defaults, different case count.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Types that can propose strictly "smaller" variants of themselves.
pub trait Shrink: Sized {
    /// Candidate simplifications, most aggressive first. Must not include
    /// `self` (the harness bounds steps, so cycles only waste budget).
    fn shrink(&self) -> Vec<Self>;
}

/// Wrapper disabling shrinking for its contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoShrink<T>(pub T);

impl<T> Shrink for NoShrink<T> {
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl<T> std::ops::Deref for NoShrink<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2, v - 1];
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )+};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 || !v.is_finite() {
            return Vec::new();
        }
        vec![0.0, v / 2.0]
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out = vec![Vec::new()];
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        // Bound the candidate count on long inputs: probe evenly spaced
        // positions rather than every index.
        let step = (n / 8).max(1);
        for i in (0..n).step_by(step) {
            if n > 1 {
                let mut v = self.clone();
                v.remove(i);
                out.push(v);
            }
            for s in self[i].shrink().into_iter().take(3) {
                let mut v = self.clone();
                v[i] = s;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for s in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = s;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}

impl_shrink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// `Err` with the failure message, whether the property returned it or
/// panicked with it.
fn run_prop<T, P>(prop: &P, input: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Run `prop` against `cfg.cases` inputs drawn from `gen`; on failure,
/// shrink and panic with a replayable report.
pub fn check<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: Clone + Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut root = Rng::new(cfg.seed);
    for case in 0..cfg.cases {
        let case_seed = root.next_u64();
        let input = gen(&mut Rng::new(case_seed));
        let Err(error) = run_prop(&prop, &input) else {
            continue;
        };

        // Greedy shrink: take the first failing candidate, repeat.
        let mut minimal = input.clone();
        let mut last_error = error.clone();
        let mut steps = 0u32;
        'outer: while steps < cfg.max_shrink_steps {
            for candidate in minimal.shrink() {
                if let Err(e) = run_prop(&prop, &candidate) {
                    minimal = candidate;
                    last_error = e;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }

        panic!(
            "property `{name}` failed\n\
             \x20 case {case_no} of {total} (case seed {case_seed:#018x}; \
             rerun with MAD_PROP_SEED={root_seed:#x})\n\
             \x20 original input: {input:?}\n\
             \x20 shrunk input ({steps} steps): {minimal:?}\n\
             \x20 error: {last_error}",
            case_no = case + 1,
            total = cfg.cases,
            root_seed = cfg.seed,
        );
    }
}

/// Generate a `Vec` whose length is drawn from `len_range` and whose
/// elements come from `elem` — the workhorse collection generator.
pub fn vec_of<T>(
    rng: &mut Rng,
    len_range: std::ops::Range<usize>,
    mut elem: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let len = if len_range.start + 1 >= len_range.end {
        len_range.start
    } else {
        rng.gen_range(len_range)
    };
    (0..len).map(|_| elem(rng)).collect()
}

/// Uniformly random bytes with length in `len_range`.
pub fn bytes(rng: &mut Rng, len_range: std::ops::Range<usize>) -> Vec<u8> {
    let mut v = vec_of(rng, len_range, |_| 0u8);
    rng.fill_bytes(&mut v);
    v
}

/// Guard a property's precondition: inputs that violate it are discarded
/// as vacuous passes (`return Ok(())`). Type-directed shrinking can step
/// outside the generator's bounds; guarding with `prop_require!` keeps the
/// shrinker from "minimizing" into inputs the property was never about.
#[macro_export]
macro_rules! prop_require {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Assert inside a property body: evaluates to `return Err(..)` on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assert inside a property body; reports both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::sync::atomic::AtomicU32::new(0);
        let cfg = Config {
            cases: 50,
            seed: 1,
            max_shrink_steps: 10,
        };
        check(
            "always-true",
            &cfg,
            |rng| rng.gen_range(0u64..100),
            |_| {
                counted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(())
            },
        );
        assert_eq!(counted.load(std::sync::atomic::Ordering::Relaxed), 50);
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            let cfg = Config {
                cases: 20,
                seed: 777,
                max_shrink_steps: 0,
            };
            // The property records its inputs via interior mutability.
            let seen_cell = std::cell::RefCell::new(&mut seen);
            check(
                "recorder",
                &cfg,
                |rng| (rng.gen_range(0u64..1_000_000), prop_bytes(rng)),
                |input| {
                    seen_cell.borrow_mut().push(input.clone());
                    Ok(())
                },
            );
            seen
        };
        assert_eq!(collect(), collect());
    }

    fn prop_bytes(rng: &mut Rng) -> Vec<u8> {
        bytes(rng, 0..16)
    }

    #[test]
    fn shrinks_to_minimal_counterexample() {
        // Property: every element < 100. Generator produces one offender
        // among noise; the shrinker must isolate it to a single-element
        // vector holding the smallest failing value.
        let cfg = Config {
            cases: 64,
            seed: 3,
            max_shrink_steps: 400,
        };
        let failure = catch_unwind(AssertUnwindSafe(|| {
            check(
                "all-small",
                &cfg,
                |rng| vec_of(rng, 1..20, |r| r.gen_range(0u64..150)),
                |v| {
                    for &x in v {
                        prop_assert!(x < 100, "element {x} too large");
                    }
                    Ok(())
                },
            );
        }))
        .expect_err("property must fail");
        let report = failure.downcast_ref::<String>().unwrap();
        assert!(
            report.contains("shrunk input") && report.contains("[100]"),
            "expected a fully shrunk report, got:\n{report}"
        );
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let cfg = Config {
            cases: 5,
            seed: 9,
            max_shrink_steps: 50,
        };
        let failure = catch_unwind(AssertUnwindSafe(|| {
            check(
                "panics",
                &cfg,
                |rng| rng.gen_range(1u64..1000),
                |&v| {
                    assert!(v == 0, "boom {v}");
                    Ok(())
                },
            );
        }))
        .expect_err("property must fail");
        let report = failure.downcast_ref::<String>().unwrap();
        assert!(report.contains("panicked: boom"), "got:\n{report}");
        // Shrinking drives the value to the type-minimal failing input 1.
        assert!(report.contains("shrunk input"), "got:\n{report}");
    }
}
