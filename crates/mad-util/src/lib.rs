//! # mad-util — the workspace's in-tree support subsystem
//!
//! This environment builds with **zero crates.io dependencies**: there is no
//! registry access, no vendor directory, and therefore no `parking_lot`,
//! `crossbeam`, `bytes`, `rand`, `proptest`, or `criterion`. Everything the
//! Madeleine reproduction needs from those crates is reimplemented here, on
//! `std` alone, with APIs close enough that call sites migrate nearly 1:1 —
//! and tailored where it pays: the PRNG and property harness are
//! deterministic by construction, which the virtual-time runtime's
//! reproducibility tests actually want.
//!
//! Modules:
//!
//! * [`sync`] — non-poisoning `Mutex`/`RwLock`/`Condvar` wrappers over
//!   `std::sync` with the `parking_lot` lock API (`lock()` returns a guard,
//!   `Condvar::wait` takes `&mut MutexGuard`).
//! * [`chan`] — bounded + unbounded MPMC channels with the
//!   `crossbeam::channel` send/recv/timeout/disconnect surface.
//! * [`bytes`] — a cheaply-cloneable `Bytes` buffer (shared owner + range).
//! * [`rng`] — a seedable SplitMix64 PRNG for workload generation.
//! * [`prop`] — a small deterministic property-testing harness with
//!   shrinking and failing-input reports.
//! * [`microbench`] — a warmup + median-of-N wall-clock timing harness for
//!   `harness = false` bench targets.
//! * [`pool`] — a size-classed recycling byte-buffer pool with
//!   return-on-drop handles and hit/miss counters.
//! * [`hist`] — lock-free log2-bucketed histograms (relaxed-atomic
//!   record, quantiles derived from plain snapshots) for the live
//!   metrics plane.
//! * [`reactor`] — a readiness reactor (poll-driven tasks, timer wheel,
//!   fixed worker pool) over a pluggable parking substrate, so the same
//!   event loop runs on real condvars and on the virtual clock.

#![warn(missing_docs)]

pub mod bytes;
pub mod chan;
pub mod hist;
pub mod microbench;
pub mod pool;
pub mod prop;
pub mod reactor;
pub mod rng;
pub mod sync;
