//! Non-poisoning lock primitives with the `parking_lot` API shape.
//!
//! `std::sync` locks return `LockResult` because a panicking holder poisons
//! the lock; every call site in this workspace treated that as impossible
//! (the previous `parking_lot` dependency has no poisoning either). These
//! wrappers recover the inner guard on poison, so `lock()` returns the guard
//! directly and `Condvar::wait` takes `&mut MutexGuard` — call sites migrate
//! from `parking_lot` by swapping the import path.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock that never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            inner: ManuallyDrop::new(guard),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                inner: ManuallyDrop::new(g),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: ManuallyDrop::new(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Access the value without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard of a [`Mutex`].
///
/// Held as `ManuallyDrop` so [`Condvar::wait`] can move the underlying
/// `std` guard out and back without an `Option` branch on every deref.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: dropped exactly once, here; `Condvar::wait*` never leaves
        // the slot vacant (it aborts if re-acquisition is impossible).
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Acquire a read guard only if no writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire a write guard only if the lock is free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Access the value without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Shared read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed (the predicate
    /// must still be re-checked: wakeups can race with the deadline).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose wait methods take `&mut MutexGuard`, as in
/// `parking_lot`, instead of consuming and returning the guard.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Aborts the process if dropped during unwinding; guards the window in
/// which a `MutexGuard`'s slot is vacant. `std::sync::Condvar` only panics
/// when one condvar is used with two different mutexes — a programming
/// error for which an abort is a kinder failure than a double unlock.
struct AbortOnDrop;

impl Drop for AbortOnDrop {
    fn drop(&mut self) {
        eprintln!("mad-util: condvar used with more than one mutex; aborting");
        std::process::abort();
    }
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically release the mutex and block until notified, re-acquiring
    /// before returning. Spurious wakeups are possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the slot is refilled below before anyone can observe it;
        // the bomb turns a (mismatched-mutex) panic into an abort so the
        // vacated guard is never double-dropped.
        let inner = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let bomb = AbortOnDrop;
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        std::mem::forget(bomb);
        guard.inner = ManuallyDrop::new(inner);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // SAFETY: as in `wait`.
        let inner = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let bomb = AbortOnDrop;
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        std::mem::forget(bomb);
        guard.inner = ManuallyDrop::new(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_try_lock() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A poisoned std mutex would return Err here; ours recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_coexist_writers_exclude() {
        let l = RwLock::new(5u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        // The guard still guards: deref works and the mutex is still held.
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
