//! Lock-free log2-bucketed value histograms.
//!
//! [`AtomicHistogram`] is the recording half of the live metrics plane:
//! a fixed array of 64 power-of-two buckets plus a running sum and max,
//! all relaxed atomics, so a hot path records a latency in a handful of
//! uncontended atomic adds — no locks, no allocation, no ordering
//! constraints on the data path. The reading half, [`HistSnapshot`], is
//! a plain copy from which p50/p90/p99/max (any quantile) derive; every
//! reported quantile is the *upper bound* of the log2 bucket holding
//! that rank, so the error is bounded by the bucket width (a factor of
//! two) and a quantile always lies within its bucket's bounds.
//!
//! The histogram lives in `mad-util` rather than the metrics crate so
//! layers below the registry (the [`crate::reactor`] poll loop, drivers)
//! can record into one without a dependency cycle.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. `[2^(i-1), 2^i)`, with bucket 0 holding exactly `{0}` and
/// the top bucket saturating (it absorbs everything with 63+ bits).
pub const BUCKETS: usize = 64;

/// Bucket index of a value: its bit length, saturated to the top bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive `(low, high)` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        _ if i < BUCKETS - 1 => (1u64 << (i - 1), (1u64 << i) - 1),
        _ => (1u64 << (BUCKETS - 2), u64::MAX),
    }
}

/// A lock-free histogram of `u64` samples in 64 log2 buckets.
///
/// Recording is wait-free and imposes no ordering: one relaxed add into
/// the sample's bucket, one into the running sum, and one `fetch_max`.
/// Snapshots are not atomic across counters — a reader racing a writer
/// may see a sum that includes a sample whose bucket increment it
/// missed — but every counter is monotone, so windows computed from two
/// snapshots never go negative.
pub struct AtomicHistogram {
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("AtomicHistogram")
            .field("count", &s.count())
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Copy the current counters out for quantile math or export.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of an [`AtomicHistogram`]: plain integers,
/// mergeable, and the input to all quantile math.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Sum of every recorded sample (wrapping only past `u64::MAX`).
    pub sum: u64,
    /// Largest sample recorded (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts, indexed by [`bucket_index`].
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl std::fmt::Debug for HistSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistSnapshot")
            .field("count", &self.count())
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl HistSnapshot {
    /// Total samples (the sum of every bucket).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Fold another snapshot into this one (counts and sum add, max
    /// takes the larger) — cluster-wide aggregation in mad_top.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The quantile `q` in `[0, 1]`: the upper bound of the bucket that
    /// holds the sample of rank `ceil(q * count)`, clamped to the
    /// recorded max so `quantile(1.0)` reports the true maximum. Returns
    /// 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 62), BUCKETS - 1);
        assert_eq!(bucket_index((1u64 << 62) - 1), BUCKETS - 2);
    }

    #[test]
    fn bounds_partition_the_domain() {
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut expect_low = 1u64;
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_low, "bucket {i} low");
            if i < BUCKETS - 1 {
                assert_eq!(hi, expect_low * 2 - 1, "bucket {i} high");
                expect_low *= 2;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = AtomicHistogram::new();
        for v in [0u64, 1, 5, 5, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.sum, 11_111);
        assert_eq!(s.max, 10_000);
        // p100 clamps to the true max, not the bucket bound.
        assert_eq!(s.quantile(1.0), 10_000);
        // Every quantile sits inside the bounds of some bucket that is
        // consistent with the recorded data.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99] {
            let v = s.quantile(q);
            assert!(v <= s.max);
        }
        assert_eq!(s.quantile(0.5), bucket_bounds(bucket_index(5)).1);
    }

    #[test]
    fn top_bucket_saturates_without_panic() {
        let h = AtomicHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(0.99), u64::MAX);
    }

    #[test]
    fn merge_adds_counts_and_sum() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(10);
        a.record(20);
        b.record(1 << 40);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum, 30 + (1u64 << 40));
        assert_eq!(s.max, 1 << 40);
    }
}
