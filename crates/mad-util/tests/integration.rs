//! Cross-module integration tests: the guarantees the rest of the
//! workspace leans on, exercised with real threads.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mad_util::chan::{self, RecvTimeoutError, TryRecvError, TrySendError};
use mad_util::rng::Rng;
use mad_util::sync::{Condvar, Mutex};

// ---------------------------------------------------------------- channels

#[test]
fn chan_fifo_order_single_consumer() {
    let (tx, rx) = chan::unbounded();
    for i in 0..1000 {
        tx.send(i).unwrap();
    }
    for i in 0..1000 {
        assert_eq!(rx.recv().unwrap(), i);
    }
}

#[test]
fn chan_bounded_blocks_at_capacity_until_pop() {
    let (tx, rx) = chan::bounded(2);
    tx.send(1).unwrap();
    tx.send(2).unwrap();
    assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));

    let t0 = Instant::now();
    let h = std::thread::spawn(move || {
        tx.send(3).unwrap(); // blocks until the consumer pops
        tx
    });
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(rx.recv().unwrap(), 1);
    let tx = h.join().unwrap();
    assert!(
        t0.elapsed() >= Duration::from_millis(25),
        "send returned early"
    );
    assert_eq!(rx.recv().unwrap(), 2);
    assert_eq!(rx.recv().unwrap(), 3);
    drop(tx);
    assert!(rx.recv().is_err());
}

#[test]
fn chan_disconnect_semantics_both_directions() {
    // Sender side gone: drain, then error.
    let (tx, rx) = chan::unbounded();
    tx.send(7u32).unwrap();
    drop(tx);
    assert_eq!(rx.recv(), Ok(7));
    assert!(rx.recv().is_err());
    assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

    // Receiver side gone: send fails and returns the value.
    let (tx, rx) = chan::unbounded();
    drop(rx);
    assert_eq!(tx.send(9u32), Err(chan::SendError(9)));

    // A clone keeps the channel alive; only the last drop disconnects.
    let (tx, rx) = chan::unbounded::<u32>();
    let tx2 = tx.clone();
    drop(tx);
    assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    tx2.send(1).unwrap();
    assert_eq!(rx.recv(), Ok(1));
}

#[test]
fn chan_recv_timeout_fires_and_recovers() {
    let (tx, rx) = chan::unbounded::<u8>();
    let t0 = Instant::now();
    assert_eq!(
        rx.recv_timeout(Duration::from_millis(30)),
        Err(RecvTimeoutError::Timeout)
    );
    assert!(t0.elapsed() >= Duration::from_millis(25));
    tx.send(5).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Ok(5));
    drop(tx);
    assert_eq!(
        rx.recv_timeout(Duration::from_millis(30)),
        Err(RecvTimeoutError::Disconnected)
    );
}

#[test]
fn chan_mpmc_under_contention_delivers_exactly_once() {
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 2_000;
    let (tx, rx) = chan::bounded(8);
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                tx.send(p * PER_PRODUCER + i).unwrap();
            }
        }));
    }
    drop(tx);
    let mut consumers = Vec::new();
    for _ in 0..CONSUMERS {
        let rx = rx.clone();
        consumers.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut all: Vec<u64> = consumers
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..PRODUCERS * PER_PRODUCER).collect::<Vec<_>>());
}

// -------------------------------------------------------------------- rng

#[test]
fn rng_identical_streams_across_runs() {
    // Two generators from one seed agree forever; the derived draws
    // (ranges, floats, bools, byte fills) must agree too, because tests
    // seed workloads this way on different machines.
    let mut a = Rng::new(0xDEAD_BEEF);
    let mut b = Rng::new(0xDEAD_BEEF);
    for _ in 0..1_000 {
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.gen_range(0u64..9_999), b.gen_range(0u64..9_999));
        assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        assert_eq!(a.bool(), b.bool());
    }
    let (mut ba, mut bb) = ([0u8; 33], [0u8; 33]);
    a.fill_bytes(&mut ba);
    b.fill_bytes(&mut bb);
    assert_eq!(ba, bb);
}

#[test]
fn rng_split_streams_are_independent_and_deterministic() {
    let mut parent1 = Rng::new(5);
    let child1 = parent1.split();
    let mut parent2 = Rng::new(5);
    let child2 = parent2.split();
    assert_eq!(child1, child2);
    // Consuming the child does not perturb the parent's stream.
    let mut c = child1;
    for _ in 0..10 {
        c.next_u64();
    }
    assert_eq!(parent1.next_u64(), parent2.next_u64());
}

// ------------------------------------------------- condvar, vtime-style

/// The vtime clock's monitor discipline (DESIGN.md §7b lesson 1): state
/// mutations and wakeups share one `Mutex` + `Condvar`; waiters loop on
/// `wait_for` with a grace timeout and re-check their *own* predicate on
/// every wakeup, because `notify_all` wakes everyone and timeouts race
/// with notifications. This test replicates that pattern: N waiters each
/// wait for their slot to flip, a coordinator flips them one at a time.
#[test]
fn condvar_wakeup_under_vtime_monitor_pattern() {
    const WAITERS: usize = 6;
    struct Monitor {
        core: Mutex<Vec<bool>>,
        cv: Condvar,
    }
    let m = Arc::new(Monitor {
        core: Mutex::new(vec![false; WAITERS]),
        cv: Condvar::new(),
    });

    let mut handles = Vec::new();
    for id in 0..WAITERS {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            let mut core = m.core.lock();
            let mut grace_timeouts = 0u32;
            while !core[id] {
                // Short grace period, as in the clock's deadlock probe: a
                // timeout must NOT be treated as the predicate holding.
                let r = m.cv.wait_for(&mut core, Duration::from_millis(20));
                if r.timed_out() {
                    grace_timeouts += 1;
                }
            }
            grace_timeouts
        }));
    }

    // Flip slots one by one with pauses longer than the grace period, so
    // every waiter demonstrably survives spurious-looking timeouts.
    for id in 0..WAITERS {
        std::thread::sleep(Duration::from_millis(30));
        let mut core = m.core.lock();
        core[id] = true;
        drop(core);
        m.cv.notify_all();
    }

    let timeout_counts: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // The last waiters sat through several grace periods and many foreign
    // notify_alls without ever returning early.
    assert!(
        timeout_counts.iter().any(|&c| c > 0),
        "expected at least one waiter to ride out a grace timeout: {timeout_counts:?}"
    );
}

/// Waking between `wait_for` timeout expiry and re-acquisition must not
/// lose the notification (the predicate-recheck loop absorbs the race).
#[test]
fn condvar_timeout_notification_race_is_safe() {
    let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let pair = pair.clone();
        handles.push(std::thread::spawn(move || {
            let (lock, cv) = &*pair;
            let mut v = lock.lock();
            while *v < 100 {
                cv.wait_for(&mut v, Duration::from_micros(50));
            }
            *v
        }));
    }
    {
        let (lock, cv) = &*pair;
        for _ in 0..100 {
            *lock.lock() += 1;
            cv.notify_all();
        }
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 100);
    }
}
