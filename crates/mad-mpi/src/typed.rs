//! Safe typed views over byte payloads (`f64`/`u64` vectors), plus typed
//! collective helpers.

use madeleine::error::Result;

use crate::comm::Communicator;

/// Encode a slice of `f64` as little-endian bytes.
pub fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Decode little-endian bytes into `f64`s. Panics on ragged input.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert!(
        b.len().is_multiple_of(8),
        "payload is not a whole number of f64"
    );
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Encode a slice of `u64` as little-endian bytes.
pub fn u64s_to_bytes(v: &[u64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Decode little-endian bytes into `u64`s. Panics on ragged input.
pub fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    assert!(
        b.len().is_multiple_of(8),
        "payload is not a whole number of u64"
    );
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Element-wise combine of two little-endian `f64` byte buffers.
pub fn combine_f64(op: impl Fn(f64, f64) -> f64 + Copy) -> impl Fn(&mut [u8], &[u8]) + Copy {
    move |acc, other| {
        for (a, o) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
            let x = f64::from_le_bytes(a.try_into().unwrap());
            let y = f64::from_le_bytes(o.try_into().unwrap());
            a.copy_from_slice(&op(x, y).to_le_bytes());
        }
    }
}

impl Communicator {
    /// Element-wise `f64` allreduce (every rank ends with the result).
    pub fn allreduce_f64(
        &self,
        data: &mut Vec<f64>,
        op: impl Fn(f64, f64) -> f64 + Copy,
    ) -> Result<()> {
        let mut bytes = f64s_to_bytes(data);
        self.allreduce(&mut bytes, combine_f64(op))?;
        *data = bytes_to_f64s(&bytes);
        Ok(())
    }

    /// Element-wise `f64` sum-reduce to `root`; returns the result there.
    pub fn reduce_sum_f64(&self, root: u32, data: &[f64]) -> Result<Option<Vec<f64>>> {
        let mut bytes = f64s_to_bytes(data);
        let is_root = self.reduce(root, &mut bytes, combine_f64(|a, b| a + b))?;
        Ok(is_root.then(|| bytes_to_f64s(&bytes)))
    }

    /// Broadcast a `f64` vector from `root`.
    pub fn broadcast_f64(&self, root: u32, data: &mut Vec<f64>) -> Result<()> {
        let mut bytes = f64s_to_bytes(data);
        self.broadcast(root, &mut bytes)?;
        *data = bytes_to_f64s(&bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let v = vec![1.5, -2.25, f64::MIN_POSITIVE, 0.0];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    fn u64_round_trip() {
        let v = vec![0, 1, u64::MAX, 42];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&v)), v);
    }

    #[test]
    fn combine_applies_elementwise() {
        let mut a = f64s_to_bytes(&[1.0, 2.0]);
        let b = f64s_to_bytes(&[10.0, 20.0]);
        combine_f64(|x, y| x + y)(&mut a, &b);
        assert_eq!(bytes_to_f64s(&a), vec![11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "whole number of f64")]
    fn ragged_input_rejected() {
        bytes_to_f64s(&[1, 2, 3]);
    }
}
