//! Collective operations over the communicator, with the classic
//! algorithms: dissemination barrier, binomial broadcast/reduce,
//! reduce+broadcast allreduce, linear gather/scatter, pairwise alltoall.
//!
//! Every collective uses its own reserved tag so concurrent user traffic
//! with arbitrary tags cannot be confused with internal rounds. Within one
//! collective, the round number is folded into the tag, so even the
//! dissemination barrier's log₂(n) rounds stay separate.

use madeleine::error::Result;

use crate::comm::{Communicator, INTERNAL_TAG_BASE};

const TAG_BARRIER: u32 = INTERNAL_TAG_BASE;
const TAG_BCAST: u32 = INTERNAL_TAG_BASE + 0x100;
const TAG_REDUCE: u32 = INTERNAL_TAG_BASE + 0x200;
const TAG_GATHER: u32 = INTERNAL_TAG_BASE + 0x300;
const TAG_SCATTER: u32 = INTERNAL_TAG_BASE + 0x400;
const TAG_ALLTOALL: u32 = INTERNAL_TAG_BASE + 0x500;
const TAG_ALLGATHER: u32 = INTERNAL_TAG_BASE + 0x600;

impl Communicator {
    /// Dissemination barrier: ⌈log₂ n⌉ rounds of pairwise notifications.
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let mut round = 0u32;
        let mut dist = 1u32;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            let tag = TAG_BARRIER + round;
            self.send_raw(to, tag, &[])?;
            self.recv(Some(from), Some(tag))?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast from `root`. On non-root ranks `data` is
    /// resized and overwritten with the root's bytes.
    pub fn broadcast(&self, root: u32, data: &mut Vec<u8>) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let vrank = (self.rank() + n - root) % n;
        // Receive phase: find the bit that names our parent.
        let mut mask = 1u32;
        while mask < n {
            if vrank & mask != 0 {
                let parent = ((vrank - mask) + root) % n;
                let (payload, _) = self.recv(Some(parent), Some(TAG_BCAST))?;
                *data = payload;
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children below our bit.
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < n {
                let child = ((vrank + mask) + root) % n;
                self.send_raw(child, TAG_BCAST, data)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Binomial-tree reduction to `root`. `combine(acc, other)` folds a
    /// child's contribution into the local accumulator; both slices always
    /// have the (common) payload length. Returns `true` on the root, whose
    /// `data` then holds the reduced result; non-root `data` is clobbered
    /// with partial reductions.
    pub fn reduce(
        &self,
        root: u32,
        data: &mut [u8],
        combine: impl Fn(&mut [u8], &[u8]),
    ) -> Result<bool> {
        let n = self.size();
        if n <= 1 {
            return Ok(true);
        }
        let vrank = (self.rank() + n - root) % n;
        let mut mask = 1u32;
        while mask < n {
            if vrank & mask == 0 {
                // We own this subtree: absorb the child at vrank|mask.
                if vrank | mask < n {
                    let child = ((vrank | mask) + root) % n;
                    let (payload, _) = self.recv(Some(child), Some(TAG_REDUCE + mask))?;
                    assert_eq!(payload.len(), data.len(), "reduce length mismatch");
                    combine(data, &payload);
                }
            } else {
                // Hand our partial to the parent and stop.
                let parent = ((vrank - mask) + root) % n;
                self.send_raw(parent, TAG_REDUCE + mask, data)?;
                return Ok(false);
            }
            mask <<= 1;
        }
        Ok(true)
    }

    /// Reduce to rank 0, then broadcast the result: every rank ends with
    /// the fully combined `data`.
    pub fn allreduce(&self, data: &mut Vec<u8>, combine: impl Fn(&mut [u8], &[u8])) -> Result<()> {
        self.reduce(0, data, combine)?;
        self.broadcast(0, data)
    }

    /// Linear gather to `root`: returns `Some(parts)` on the root (indexed
    /// by rank, the root's own contribution included), `None` elsewhere.
    pub fn gather(&self, root: u32, data: &[u8]) -> Result<Option<Vec<Vec<u8>>>> {
        if self.rank() == root {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); self.size() as usize];
            parts[root as usize] = data.to_vec();
            for _ in 0..self.size() - 1 {
                let (payload, status) = self.recv(None, Some(TAG_GATHER))?;
                parts[status.source as usize] = payload;
            }
            Ok(Some(parts))
        } else {
            self.send_raw(root, TAG_GATHER, data)?;
            Ok(None)
        }
    }

    /// Linear scatter from `root`: rank `i` receives `parts[i]`. Only the
    /// root passes `Some(parts)` (one entry per rank).
    pub fn scatter(&self, root: u32, parts: Option<&[Vec<u8>]>) -> Result<Vec<u8>> {
        if self.rank() == root {
            let parts = parts.expect("root provides the parts");
            assert_eq!(parts.len(), self.size() as usize, "one part per rank");
            for (i, part) in parts.iter().enumerate() {
                if i as u32 != root {
                    self.send_raw(i as u32, TAG_SCATTER, part)?;
                }
            }
            Ok(parts[root as usize].clone())
        } else {
            assert!(parts.is_none(), "only the root provides parts");
            Ok(self.recv(Some(root), Some(TAG_SCATTER))?.0)
        }
    }

    /// Ring allgather: after n−1 rounds every rank holds every rank's
    /// contribution, indexed by source rank. Each round passes the
    /// neighbour's newest block along the ring, so per-round traffic is one
    /// block per link — the classic bandwidth-optimal algorithm.
    pub fn allgather(&self, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        let n = self.size();
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n as usize];
        out[self.rank() as usize] = data.to_vec();
        if n == 1 {
            return Ok(out);
        }
        let right = (self.rank() + 1) % n;
        let left = (self.rank() + n - 1) % n;
        // In round r we forward the block that originated at rank - r.
        let mut carry = data.to_vec();
        for round in 0..n - 1 {
            let got = self.sendrecv(
                right,
                TAG_ALLGATHER + round,
                &carry,
                left,
                TAG_ALLGATHER + round,
            )?;
            let origin = (self.rank() + n - 1 - round) % n;
            out[origin as usize] = got.clone();
            carry = got;
        }
        Ok(out)
    }

    /// Pairwise alltoall: rank `i` sends `parts[j]` to rank `j` and
    /// receives everyone's `parts[i]`, returned indexed by source rank.
    /// The exchange is staggered (round r pairs `rank` with `rank ^ r`-ish
    /// linear offsets) so no two ranks flood the same destination at once.
    pub fn alltoall(&self, parts: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        let n = self.size();
        assert_eq!(parts.len(), n as usize, "one part per rank");
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n as usize];
        out[self.rank() as usize] = parts[self.rank() as usize].clone();
        for round in 1..n {
            let to = (self.rank() + round) % n;
            let from = (self.rank() + n - round) % n;
            let got = self.sendrecv(
                to,
                TAG_ALLTOALL + round,
                &parts[to as usize],
                from,
                TAG_ALLTOALL + round,
            )?;
            out[from as usize] = got;
        }
        Ok(out)
    }
}
