//! # mad-mpi — an MPI-flavoured layer on top of Madeleine virtual channels
//!
//! The paper's conclusion: *"On top of Madeleine, high-level traditional
//! routing mechanisms can easily and efficiently be implemented."*
//! Historically that claim was cashed in by MPICH/Madeleine; this crate is
//! the same idea at reproduction scale — a compact message-passing layer
//! with tagged point-to-point operations and the classic collective
//! algorithms, running unchanged over flat clusters and clusters of
//! clusters (gateway forwarding stays completely invisible up here).
//!
//! * [`Communicator`] — ranks over one virtual channel, `send`/`recv` with
//!   tag and source matching, and an unexpected-message queue (the eager
//!   protocol every early MPI used).
//! * Collectives: dissemination [`Communicator::barrier`], binomial-tree
//!   [`Communicator::broadcast`] and [`Communicator::reduce`],
//!   [`Communicator::allreduce`], linear [`Communicator::gather`] /
//!   [`Communicator::scatter`], and pairwise [`Communicator::alltoall`] —
//!   real algorithms, not loops around a root bottleneck (except where
//!   linear is the classic choice).
//!
//! Payloads are byte slices; [`typed`] offers safe `f64`/`u64` helpers.

#![warn(missing_docs)]

mod collectives;
mod comm;
pub mod typed;

pub use comm::{Communicator, Status};

#[cfg(test)]
mod tests;
