//! Tests of the MPI layer over real shared memory — both flat clusters and
//! clusters of clusters (the gateways must be invisible up here).

use std::sync::Arc;

use mad_shm::ShmDriver;
use madeleine::session::VcOptions;
use madeleine::SessionBuilder;

use crate::typed::{bytes_to_u64s, u64s_to_bytes};
use crate::Communicator;

/// A flat 4-node world over one shared-memory network.
fn flat_world<T: Send + 'static>(f: impl Fn(Communicator) -> T + Send + Sync + 'static) -> Vec<T> {
    let mut sb = SessionBuilder::new(4);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1, 2, 3]);
    sb.vchannel("vc", &[net], VcOptions::default());
    sb.run(move |node| f(Communicator::new(Arc::clone(node.vchannel("vc")))))
}

/// A 5-node cluster of clusters: {0,1,2} and {2,3,4} with gateway 2.
fn gateway_world<T: Send + 'static>(
    f: impl Fn(Communicator) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let mut sb = SessionBuilder::new(5);
    let rt = sb.runtime().clone();
    let n0 = sb.network("a", ShmDriver::new(rt.clone()), &[0, 1, 2]);
    let n1 = sb.network("b", ShmDriver::new(rt), &[2, 3, 4]);
    sb.vchannel("vc", &[n0, n1], VcOptions::default());
    sb.run(move |node| f(Communicator::new(Arc::clone(node.vchannel("vc")))))
}

#[test]
fn ranks_and_sizes_agree() {
    let out = flat_world(|comm| (comm.rank(), comm.size()));
    for (i, (rank, size)) in out.into_iter().enumerate() {
        assert_eq!(rank, i as u32);
        assert_eq!(size, 4);
    }
}

#[test]
fn point_to_point_with_tags() {
    let ok = flat_world(|comm| {
        match comm.rank() {
            0 => {
                comm.send(1, 7, b"seven").unwrap();
                comm.send(1, 9, b"nine").unwrap();
                true
            }
            1 => {
                // Receive out of order: tag 9 first, buffering tag 7.
                let (nine, st9) = comm.recv(Some(0), Some(9)).unwrap();
                let (seven, st7) = comm.recv(Some(0), Some(7)).unwrap();
                assert_eq!(nine, b"nine");
                assert_eq!(seven, b"seven");
                assert_eq!((st9.tag, st7.tag), (9, 7));
                assert_eq!(st7.source, 0);
                true
            }
            _ => true,
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn wildcard_receive_reports_status() {
    let ok = flat_world(|comm| match comm.rank() {
        2 => {
            comm.send(3, 5, b"x").unwrap();
            true
        }
        3 => {
            let (payload, status) = comm.recv(None, None).unwrap();
            payload == b"x" && status.source == 2 && status.tag == 5 && status.len == 1
        }
        _ => true,
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn barrier_all_ranks() {
    let out = flat_world(|comm| {
        for _ in 0..5 {
            comm.barrier().unwrap();
        }
        comm.rank()
    });
    assert_eq!(out.len(), 4);
}

#[test]
fn broadcast_from_each_root() {
    let ok = flat_world(|comm| {
        for root in 0..comm.size() {
            let mut data = if comm.rank() == root {
                format!("from-{root}").into_bytes()
            } else {
                Vec::new()
            };
            comm.broadcast(root, &mut data).unwrap();
            assert_eq!(data, format!("from-{root}").into_bytes());
        }
        true
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn reduce_sums_across_ranks() {
    let ok = flat_world(|comm| {
        let mine = vec![comm.rank() as u64, 100 + comm.rank() as u64];
        let mut bytes = u64s_to_bytes(&mine);
        let is_root = comm
            .reduce(0, &mut bytes, |acc, other| {
                let mut a = bytes_to_u64s(acc);
                let b = bytes_to_u64s(other);
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                acc.copy_from_slice(&u64s_to_bytes(&a));
            })
            .unwrap();
        if comm.rank() == 0 {
            assert!(is_root);
            // sum of 0..4 = 6; sum of 100..104 = 406
            assert_eq!(bytes_to_u64s(&bytes), vec![6, 406]);
        }
        true
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn allreduce_f64_everyone_gets_result() {
    let ok = flat_world(|comm| {
        let mut data = vec![comm.rank() as f64 + 1.0; 3];
        comm.allreduce_f64(&mut data, |a, b| a + b).unwrap();
        data == vec![10.0, 10.0, 10.0] // 1+2+3+4
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn gather_and_scatter() {
    let ok = flat_world(|comm| {
        // Gather rank-stamped payloads to root 1.
        let mine = vec![comm.rank() as u8; (comm.rank() + 1) as usize];
        let gathered = comm.gather(1, &mine).unwrap();
        if comm.rank() == 1 {
            let parts = gathered.unwrap();
            for (i, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![i as u8; i + 1]);
            }
        } else {
            assert!(gathered.is_none());
        }
        // Scatter distinct payloads from root 1.
        let parts: Option<Vec<Vec<u8>>> =
            (comm.rank() == 1).then(|| (0..4).map(|i| vec![9 + i as u8; 2]).collect());
        let got = comm.scatter(1, parts.as_deref()).unwrap();
        got == vec![9 + comm.rank() as u8; 2]
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn allgather_ring() {
    let ok = flat_world(|comm| {
        let mine = vec![comm.rank() as u8 + 1; 4];
        let all = comm.allgather(&mine).unwrap();
        (0..4).all(|r| all[r as usize] == vec![r as u8 + 1; 4])
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn allgather_across_gateway() {
    let ok = gateway_world(|comm| {
        let mine = format!("rank-{}", comm.rank()).into_bytes();
        let all = comm.allgather(&mine).unwrap();
        (0..5).all(|r| all[r as usize] == format!("rank-{r}").into_bytes())
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn alltoall_exchanges_everything() {
    let ok = flat_world(|comm| {
        let parts: Vec<Vec<u8>> = (0..4)
            .map(|dest| vec![(comm.rank() * 10 + dest) as u8; 3])
            .collect();
        let got = comm.alltoall(&parts).unwrap();
        (0..4).all(|src| got[src as usize] == vec![(src * 10 + comm.rank()) as u8; 3])
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn collectives_work_across_gateways() {
    // The same collectives on a cluster of clusters: ranks 0-4 with the
    // gateway in the middle — forwarding must be invisible.
    let ok = gateway_world(|comm| {
        assert_eq!(comm.size(), 5);
        comm.barrier().unwrap();
        let mut data = if comm.rank() == 0 {
            b"over the gateway".to_vec()
        } else {
            Vec::new()
        };
        comm.broadcast(0, &mut data).unwrap();
        assert_eq!(data, b"over the gateway");

        let mut sums = vec![comm.rank() as f64];
        comm.allreduce_f64(&mut sums, |a, b| a + b).unwrap();
        assert_eq!(sums, vec![10.0]); // 0+1+2+3+4

        let gathered = comm.gather(4, &[comm.rank() as u8]).unwrap();
        if comm.rank() == 4 {
            let parts = gathered.unwrap();
            assert_eq!(parts, vec![vec![0u8], vec![1], vec![2], vec![3], vec![4]]);
        }
        comm.barrier().unwrap();
        true
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn p2p_across_gateway_with_buffering() {
    let ok = gateway_world(|comm| match comm.rank() {
        0 => {
            // Two tagged messages race to rank 4 through the gateway.
            comm.send(4, 2, b"second").unwrap();
            comm.send(4, 1, b"first").unwrap();
            true
        }
        4 => {
            let (first, _) = comm.recv(Some(0), Some(1)).unwrap();
            let (second, _) = comm.recv(Some(0), Some(2)).unwrap();
            first == b"first" && second == b"second"
        }
        _ => true,
    });
    assert!(ok.into_iter().all(|x| x));
}
