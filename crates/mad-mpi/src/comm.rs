//! The communicator: ranks, envelopes, tag matching, eager buffering.

use std::sync::Arc;

use mad_util::sync::Mutex;
use madeleine::error::{MadError, Result};
use madeleine::types::NodeId;
use madeleine::vchannel::VirtualChannel;
use madeleine::{RecvMode, SendMode};

/// Tags ≥ this value are reserved for the collective algorithms.
pub(crate) const INTERNAL_TAG_BASE: u32 = 0xFFFF_0000;

/// Completion record of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank of the sender (communicator rank, not session node id).
    pub source: u32,
    /// Message tag.
    pub tag: u32,
    /// Payload length in bytes.
    pub len: usize,
}

#[derive(Debug)]
struct Buffered {
    source: u32,
    tag: u32,
    payload: Vec<u8>,
}

/// A group of ranks communicating over one virtual channel.
///
/// Ranks are the positions of the member node ids in ascending order — the
/// same on every member, so no exchange is needed to agree on them.
pub struct Communicator {
    vc: Arc<VirtualChannel>,
    /// Sorted member node ids; `world[rank] = node`.
    world: Vec<NodeId>,
    /// This process's communicator rank.
    rank: u32,
    /// Messages received while looking for a different match.
    unexpected: Mutex<Vec<Buffered>>,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank)
            .field("size", &self.world.len())
            .finish()
    }
}

impl Communicator {
    /// Build the communicator of every rank reachable over `vc` (plus this
    /// node itself).
    pub fn new(vc: Arc<VirtualChannel>) -> Self {
        let mut world = vc.destinations();
        world.push(vc.rank());
        world.sort_unstable();
        world.dedup();
        let rank = world
            .iter()
            .position(|&n| n == vc.rank())
            .expect("own rank in world") as u32;
        Communicator {
            vc,
            world,
            rank,
            unexpected: Mutex::new(Vec::new()),
        }
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.world.len() as u32
    }

    /// The session node id of a communicator rank.
    pub fn node_of(&self, rank: u32) -> NodeId {
        self.world[rank as usize]
    }

    fn rank_of(&self, node: NodeId) -> Result<u32> {
        self.world
            .iter()
            .position(|&n| n == node)
            .map(|i| i as u32)
            .ok_or(MadError::UnknownPeer(node))
    }

    /// Send `payload` to `dest` with `tag`. Eager and blocking-local: the
    /// call returns once the message is handed to the network.
    pub fn send(&self, dest: u32, tag: u32, payload: &[u8]) -> Result<()> {
        assert!(
            tag < INTERNAL_TAG_BASE,
            "tags ≥ {INTERNAL_TAG_BASE:#x} are reserved for collectives"
        );
        self.send_raw(dest, tag, payload)
    }

    pub(crate) fn send_raw(&self, dest: u32, tag: u32, payload: &[u8]) -> Result<()> {
        assert!(dest < self.size(), "rank {dest} out of range");
        assert_ne!(dest, self.rank, "self-sends are not supported");
        let envelope = encode_envelope(tag, payload.len());
        let mut msg = self.vc.begin_packing(self.node_of(dest))?;
        msg.pack(&envelope, SendMode::Safer, RecvMode::Express)?;
        msg.pack(payload, SendMode::Later, RecvMode::Cheaper)?;
        msg.end_packing()
    }

    /// Receive a message matching `source` and `tag` (`None` = any),
    /// returning its payload and completion status. Non-matching messages
    /// arriving in between are buffered and served to later receives.
    pub fn recv(&self, source: Option<u32>, tag: Option<u32>) -> Result<(Vec<u8>, Status)> {
        // Serve from the unexpected queue first, oldest match wins.
        {
            let mut q = self.unexpected.lock();
            if let Some(pos) = q.iter().position(|b| {
                source.is_none_or(|s| s == b.source) && tag.is_none_or(|t| t == b.tag)
            }) {
                let b = q.remove(pos);
                let status = Status {
                    source: b.source,
                    tag: b.tag,
                    len: b.payload.len(),
                };
                return Ok((b.payload, status));
            }
        }
        loop {
            let (buffered, matches) = self.pull_one(source, tag)?;
            if matches {
                let status = Status {
                    source: buffered.source,
                    tag: buffered.tag,
                    len: buffered.payload.len(),
                };
                return Ok((buffered.payload, status));
            }
            self.unexpected.lock().push(buffered);
        }
    }

    /// Pull the next wire message; report whether it matches.
    fn pull_one(&self, source: Option<u32>, tag: Option<u32>) -> Result<(Buffered, bool)> {
        let mut reader = self.vc.begin_unpacking()?;
        let src_rank = self.rank_of(reader.source())?;
        let mut envelope = [0u8; 12];
        reader.unpack(&mut envelope, SendMode::Safer, RecvMode::Express)?;
        let (msg_tag, len) = decode_envelope(&envelope);
        let mut payload = vec![0u8; len];
        reader.unpack(&mut payload, SendMode::Later, RecvMode::Cheaper)?;
        reader.end_unpacking()?;
        let matches = source.is_none_or(|s| s == src_rank) && tag.is_none_or(|t| t == msg_tag);
        Ok((
            Buffered {
                source: src_rank,
                tag: msg_tag,
                payload,
            },
            matches,
        ))
    }

    /// Exchange: send to `dest` and receive from `source` concurrently
    /// safe (send is eager, so a symmetric sendrecv cannot deadlock).
    pub fn sendrecv(
        &self,
        dest: u32,
        send_tag: u32,
        payload: &[u8],
        source: u32,
        recv_tag: u32,
    ) -> Result<Vec<u8>> {
        self.send_raw(dest, send_tag, payload)?;
        Ok(self.recv(Some(source), Some(recv_tag))?.0)
    }
}

pub(crate) fn encode_envelope(tag: u32, len: usize) -> [u8; 12] {
    let mut e = [0u8; 12];
    e[0..4].copy_from_slice(&tag.to_le_bytes());
    e[4..12].copy_from_slice(&(len as u64).to_le_bytes());
    e
}

pub(crate) fn decode_envelope(e: &[u8; 12]) -> (u32, usize) {
    (
        u32::from_le_bytes(e[0..4].try_into().unwrap()),
        u64::from_le_bytes(e[4..12].try_into().unwrap()) as usize,
    )
}
