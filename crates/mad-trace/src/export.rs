//! Snapshot container and exporters (JSONL, Chrome trace, counters CSV).

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::{Event, EventKind, SCHEMA_VERSION};

/// Events recorded on one track (usually one thread; explicitly named
/// tracks such as `ch:<label>@<rank>` also land here).
#[derive(Debug, Clone)]
pub struct ThreadSnapshot {
    /// Track name — the JSONL `thread` field.
    pub name: String,
    /// Events evicted from this track's ring because it was full.
    pub dropped: u64,
    /// Surviving events, sorted by timestamp.
    pub events: Vec<Event>,
}

/// A point-in-time copy of everything a [`crate::Tracer`] recorded.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Clock domain the timestamps live in (`"sim"` or `"mono"`).
    pub domain: &'static str,
    /// One entry per track, in registration order.
    pub threads: Vec<ThreadSnapshot>,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_args(line: &mut String, ev: &Event) {
    if ev.args.is_empty() {
        return;
    }
    line.push_str(",\"args\":{");
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        escape_json(k, line);
        line.push_str(&format!("\":{v}"));
    }
    line.push('}');
}

impl Snapshot {
    /// Total number of events across all tracks.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.event_count() == 0
    }

    /// Spans on track `thread` with category `cat`, as
    /// `(start_ns, end_ns)` pairs.
    pub fn spans(&self, thread: &str, cat: &str) -> Vec<(u64, u64)> {
        self.threads
            .iter()
            .filter(|t| t.name == thread)
            .flat_map(|t| t.events.iter())
            .filter(|e| e.kind == EventKind::Span && e.cat == cat)
            .map(|e| (e.ts_ns, e.ts_ns + e.dur_ns))
            .collect()
    }

    /// Sum of counter deltas for `(track, cat, name)` triples, keyed in
    /// that order. Argument-bearing counter events contribute to the
    /// same key.
    pub fn counter_totals(&self) -> BTreeMap<(String, String, String), i64> {
        let mut totals = BTreeMap::new();
        for t in &self.threads {
            for e in &t.events {
                if e.kind == EventKind::Count {
                    *totals
                        .entry((t.name.clone(), e.cat.to_string(), e.name.to_string()))
                        .or_insert(0) += e.value;
                }
            }
        }
        totals
    }

    /// Write the JSONL trace (one event per line; schema in DESIGN.md,
    /// "Observability").
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"ts\":0,\"thread\":\"trace\",\"kind\":\"meta\",\"cat\":\"trace\",\
             \"name\":\"begin\",\"clock\":\"{}\",\"schema\":{}}}",
            self.domain, SCHEMA_VERSION
        )?;
        for t in &self.threads {
            let mut last_ts = 0u64;
            for e in &t.events {
                let mut line = String::with_capacity(96);
                line.push_str(&format!("{{\"ts\":{},\"thread\":\"", e.ts_ns));
                escape_json(&t.name, &mut line);
                line.push_str(&format!(
                    "\",\"kind\":\"{}\",\"cat\":\"{}\",\"name\":\"{}\"",
                    e.kind.as_str(),
                    e.cat,
                    e.name
                ));
                match e.kind {
                    EventKind::Span => line.push_str(&format!(",\"dur\":{}", e.dur_ns)),
                    EventKind::Count => line.push_str(&format!(",\"value\":{}", e.value)),
                    EventKind::Instant => {}
                }
                push_args(&mut line, e);
                line.push('}');
                writeln!(w, "{line}")?;
                last_ts = e.ts_ns;
            }
            if t.dropped > 0 {
                let mut line = String::new();
                line.push_str(&format!("{{\"ts\":{last_ts},\"thread\":\""));
                escape_json(&t.name, &mut line);
                line.push_str(&format!(
                    "\",\"kind\":\"meta\",\"cat\":\"trace\",\"name\":\"dropped\",\"value\":{}}}",
                    t.dropped
                ));
                writeln!(w, "{line}")?;
            }
        }
        Ok(())
    }

    /// The JSONL trace as a string.
    pub fn to_jsonl_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf).expect("write to Vec");
        String::from_utf8(buf).expect("exporter emits UTF-8")
    }

    /// Write Chrome `trace_event` JSON (loads in Perfetto and
    /// `chrome://tracing`). Timestamps convert to microseconds; each
    /// track becomes a named thread under pid 0; counter events emit
    /// running totals per `(track, cat.name)`.
    pub fn write_chrome<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut first = true;
        let mut emit = |w: &mut W, s: String| -> io::Result<()> {
            if first {
                first = false;
            } else {
                write!(w, ",")?;
            }
            write!(w, "{s}")
        };
        for (tid, t) in self.threads.iter().enumerate() {
            let mut name = String::new();
            escape_json(&t.name, &mut name);
            emit(
                w,
                format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
            )?;
            let mut running: BTreeMap<(&str, &str), i64> = BTreeMap::new();
            for e in &t.events {
                let ts = e.ts_ns as f64 / 1000.0;
                let mut args = String::new();
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        args.push(',');
                    }
                    args.push('"');
                    escape_json(k, &mut args);
                    args.push_str(&format!("\":{v}"));
                }
                match e.kind {
                    EventKind::Span => {
                        let dur = e.dur_ns as f64 / 1000.0;
                        emit(
                            w,
                            format!(
                                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts:.3},\
                                 \"dur\":{dur:.3},\"cat\":\"{}\",\"name\":\"{}\",\
                                 \"args\":{{{args}}}}}",
                                e.cat, e.name
                            ),
                        )?;
                    }
                    EventKind::Instant => {
                        emit(
                            w,
                            format!(
                                "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{ts:.3},\
                                 \"s\":\"t\",\"cat\":\"{}\",\"name\":\"{}\",\
                                 \"args\":{{{args}}}}}",
                                e.cat, e.name
                            ),
                        )?;
                    }
                    EventKind::Count => {
                        let total = running.entry((e.cat, e.name)).or_insert(0);
                        *total += e.value;
                        emit(
                            w,
                            format!(
                                "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{ts:.3},\
                                 \"name\":\"{}.{}\",\"args\":{{\"value\":{total}}}}}",
                                e.cat, e.name
                            ),
                        )?;
                    }
                }
            }
        }
        write!(w, "]}}")
    }

    /// The Chrome trace as a string.
    pub fn to_chrome_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_chrome(&mut buf).expect("write to Vec");
        String::from_utf8(buf).expect("exporter emits UTF-8")
    }

    /// Counter totals as CSV in the `results/*.csv` style
    /// (`track,cat,name,total` header plus one row per counter).
    pub fn counters_csv(&self) -> String {
        let mut out = String::from("track,cat,name,total\n");
        for ((track, cat, name), total) in self.counter_totals() {
            out.push_str(&format!("{track},{cat},{name},{total}\n"));
        }
        out
    }

    /// Save the JSONL trace to `path`.
    pub fn save_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        self.write_jsonl(&mut f)
    }

    /// Save the Chrome trace to `path`.
    pub fn save_chrome(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        self.write_chrome(&mut f)
    }

    /// Save the counters CSV to `path`.
    pub fn save_counters_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.counters_csv())
    }
}

#[cfg(test)]
mod tests {
    use crate::schema;
    use crate::Tracer;

    #[test]
    fn jsonl_escapes_track_names() {
        let t = Tracer::new();
        t.count_on("weird\"name\\with\ncontrol\u{1}", "cat", "n", 1, &[]);
        let snap = t.snapshot();
        let text = snap.to_jsonl_string();
        let summary = schema::validate_jsonl(&text).expect("escaped output must re-parse");
        assert_eq!(summary.counts, 1);
        assert!(text.contains("weird\\\"name\\\\with\\ncontrol\\u0001"));
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let t = Tracer::new();
        {
            let _s = t.span("gw", "recv").arg("peer", 1);
        }
        t.count("gtm", "encode", 3);
        t.count("gtm", "encode", 2);
        t.instant("gw", "stall", &[]);
        let text = t.snapshot().to_chrome_string();
        let v = schema::parse(&text).expect("chrome export parses as JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // thread_name meta + span + 2 counter samples + instant
        assert_eq!(events.len(), 5);
        // Counter samples carry running totals.
        let totals: Vec<i64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(|v| v.as_i64())
                    .unwrap()
            })
            .collect();
        assert_eq!(totals, vec![3, 5]);
    }

    #[test]
    fn jsonl_validates_and_counts_kinds() {
        let t = Tracer::new();
        {
            let _s = t.span("bmm", "flush").arg("bytes", 42);
        }
        t.count("ch", "bytes_sent", 42);
        t.instant("gw", "stall", &[("depth", 2)]);
        let text = t.snapshot().to_jsonl_string();
        let s = schema::validate_jsonl(&text).unwrap();
        assert_eq!((s.spans, s.counts, s.instants), (1, 1, 1));
    }

    #[test]
    fn dropped_marker_is_emitted() {
        let t = Tracer::with_capacity(2);
        for _ in 0..5 {
            t.count("c", "n", 1);
        }
        let text = t.snapshot().to_jsonl_string();
        assert!(text.contains("\"name\":\"dropped\",\"value\":3"));
        schema::validate_jsonl(&text).unwrap();
    }
}
