//! Minimal JSON parser and JSONL trace-schema validator.
//!
//! The workspace is std-only, so this module carries just enough JSON
//! machinery for the schema checker and the tests: a recursive-descent
//! parser for one value, and [`validate_jsonl`] which enforces the
//! trace schema documented in DESIGN.md ("Observability") — every line
//! parses, the required keys are present with the right types, kinds
//! are known, and timestamps are monotone per thread.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; trace values fit well inside 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (insertion-ordered pairs).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as i64, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos -= usize::from(self.pos > 0);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, val: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(pairs)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: accept but only decode the BMP.
                        let c = char::from_u32(code).unwrap_or('\u{fffd}');
                        out.push(c);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.bump().ok_or_else(|| self.err("truncated \\u"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u"))?;
            code = code * 16 + v;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parse one JSON value from `text` (leading/trailing whitespace
/// allowed, nothing else).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

/// What [`validate_jsonl`] found in a well-formed trace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Total lines validated.
    pub lines: usize,
    /// Distinct thread/track names seen.
    pub threads: usize,
    /// Span events.
    pub spans: usize,
    /// Counter events.
    pub counts: usize,
    /// Instant events.
    pub instants: usize,
}

fn require_str<'v>(v: &'v JsonValue, key: &str, line_no: usize) -> Result<&'v str, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .ok_or_else(|| format!("line {line_no}: missing or non-string \"{key}\""))
}

/// Validate a JSONL trace against schema v1: each non-empty line parses
/// as a JSON object; `ts` (non-negative integer), `thread`, `kind`,
/// `cat`, `name` are present and well-typed; `kind` is one of
/// `span`/`instant`/`count`/`meta`; spans carry `dur`, counts carry
/// `value`; `args` (when present) is an object of numbers; and `ts` is
/// monotone non-decreasing per thread.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, String> {
    let mut summary = JsonlSummary::default();
    let mut last_ts: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        if !matches!(v, JsonValue::Object(_)) {
            return Err(format!("line {line_no}: not a JSON object"));
        }
        let ts = v
            .get("ts")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| format!("line {line_no}: missing or non-integer \"ts\""))?;
        let thread = require_str(&v, "thread", line_no)?.to_string();
        let kind = require_str(&v, "kind", line_no)?;
        require_str(&v, "cat", line_no)?;
        require_str(&v, "name", line_no)?;
        match kind {
            "span" => {
                v.get("dur")
                    .and_then(|d| d.as_u64())
                    .ok_or_else(|| format!("line {line_no}: span without integer \"dur\""))?;
                summary.spans += 1;
            }
            "count" => {
                v.get("value")
                    .and_then(|x| x.as_i64())
                    .ok_or_else(|| format!("line {line_no}: count without integer \"value\""))?;
                summary.counts += 1;
            }
            "instant" => summary.instants += 1,
            "meta" => {}
            other => return Err(format!("line {line_no}: unknown kind \"{other}\"")),
        }
        if let Some(args) = v.get("args") {
            match args {
                JsonValue::Object(pairs) => {
                    for (k, av) in pairs {
                        if av.as_f64().is_none() {
                            return Err(format!("line {line_no}: args[\"{k}\"] is not a number"));
                        }
                    }
                }
                _ => return Err(format!("line {line_no}: \"args\" is not an object")),
            }
        }
        if let Some(&prev) = last_ts.get(&thread) {
            if ts < prev {
                return Err(format!(
                    "line {line_no}: ts {ts} goes backwards on thread \"{thread}\" (prev {prev})"
                ));
            }
        } else {
            summary.threads += 1;
        }
        last_ts.insert(thread, ts);
        summary.lines += 1;
    }
    if summary.lines == 0 {
        return Err("trace is empty".to_string());
    }
    Ok(summary)
}

/// Event names allowed on a `route:` track (all `count`s, cat `route`).
pub const ROUTE_EVENT_NAMES: [&str; 5] = [
    "path_bytes",
    "switches",
    "failovers",
    "deaths",
    "readmissions",
];

/// Event names allowed on a `gw:` track (all `count`s, cat `gateway`):
/// the teardown totals plus the windowed cost-model deltas.
pub const GW_EVENT_NAMES: [&str; 14] = [
    "messages",
    "fragments",
    "fragment_bytes",
    "stalls",
    "buffer_switches",
    "credits_granted",
    "cancelled",
    "credit_timeouts",
    "errors",
    "peak_held_bytes",
    "delta_bytes",
    "delta_stalls",
    "delta_occupancy",
    "threads_spawned",
];

/// Event names allowed on an `rt:` track (all `count`s, cat `runtime`):
/// the session's end-of-run thread-budget accounting — runtime-spawned
/// threads plus the reactor pools' worker and task totals — and, on the
/// per-gateway `rt:{vc}@{node}` tracks, the copy-placement scheduler's
/// accounting: where relay copies landed (receive- or flush-staged), how
/// many found their stage idle, and each stage's cumulative busy time.
pub const RT_EVENT_NAMES: [&str; 8] = [
    "threads_spawned",
    "reactor_workers",
    "reactor_tasks",
    "copies_recv",
    "copies_flush",
    "copy_idle_hits",
    "recv_busy_ns",
    "flush_busy_ns",
];

/// Event names allowed on a `metrics:` track (all `count`s, cat
/// `metrics`): the teardown flush of each node's live registry —
/// counters and gauges by name (per-gateway stripe gauges folded into
/// `stripe_path_bytes` keyed by `args.gateway`, `queue_depth` paired
/// with its `queue_depth_peak` high-water mark) plus the derived
/// quantiles of the three latency histograms.
pub const METRICS_EVENT_NAMES: [&str; 35] = [
    "degradations",
    "health_credit_starvation",
    "health_queue_saturation",
    "health_stalled_stream",
    "health_dead_path_flap",
    "queue_depth",
    "queue_depth_peak",
    "rt_threads_spawned",
    "pool_gets",
    "pool_hits",
    "pool_misses",
    "gw_held_bytes",
    "gw_bytes_per_sec",
    "open_streams",
    "stripe_path_bytes",
    "gw_forward_ns_p50",
    "gw_forward_ns_p90",
    "gw_forward_ns_p99",
    "gw_forward_ns_max",
    "gw_forward_ns_count",
    "credit_wait_ns_p50",
    "credit_wait_ns_p90",
    "credit_wait_ns_p99",
    "credit_wait_ns_max",
    "credit_wait_ns_count",
    "reactor_poll_ns_p50",
    "reactor_poll_ns_p90",
    "reactor_poll_ns_p99",
    "reactor_poll_ns_max",
    "reactor_poll_ns_count",
    "gw_copy_bytes_p50",
    "gw_copy_bytes_p90",
    "gw_copy_bytes_p99",
    "gw_copy_bytes_max",
    "gw_copy_bytes_count",
];

/// Event names allowed on a `health:` track (all `count`s, cat
/// `health`): the mid-run watchdog verdicts, one event per detector
/// firing.
pub const HEALTH_EVENT_NAMES: [&str; 4] = [
    "credit_starvation",
    "queue_saturation",
    "stalled_stream",
    "dead_path_flap",
];

/// Event names allowed on a `member:` track (all `count`s, cat
/// `member`): the membership plane's live protocol transitions (join
/// phases, requests, acks, leaves, epoch rejections, path retire /
/// readmit decisions) plus its teardown totals.
pub const MEMBERSHIP_EVENT_NAMES: [&str; 18] = [
    "phase_connect",
    "phase_exchange",
    "phase_verify",
    "phase_activate",
    "join_request",
    "join_ack",
    "announce",
    "peer_leave",
    "leave",
    "rejoin",
    "stale_drop",
    "retire",
    "readmit",
    "joins",
    "leaves",
    "rejoins",
    "stale_drops",
    "acks_served",
];

/// Event names allowed on a `ctl:` track (all `count`s, cat `ctl`): the
/// self-tuning controller's live retune steps (each carrying the new
/// value) plus the final operating point its stop tick records.
pub const CONTROL_EVENT_NAMES: [&str; 10] = [
    "window_raise",
    "window_lower",
    "batch_raise",
    "batch_lower",
    "rendezvous_raise",
    "rendezvous_lower",
    "window",
    "batch",
    "rendezvous",
    "adjustments",
];

/// Event names allowed on a `proto:` track (all `count`s, cat `proto`):
/// the protocol plane's teardown totals — the writer-side eager vs
/// rendezvous block split and prepaid-grant fragment count on endpoint
/// tracks, the kind-12 RTS/CTS control exchanges served on gateway
/// tracks (both may appear on one track when a gateway also sends).
pub const RENDEZVOUS_EVENT_NAMES: [&str; 5] = [
    "rendezvous_blocks",
    "eager_blocks",
    "granted_fragments",
    "rts_relayed",
    "cts_sent",
];

/// What [`validate_route_tracks`] found.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RouteSummary {
    /// Events on `route:` tracks.
    pub route_events: usize,
    /// Events on `gw:` tracks.
    pub gw_events: usize,
    /// Events on `rt:` tracks.
    pub rt_events: usize,
    /// Events on `metrics:` tracks.
    pub metrics_events: usize,
    /// Events on `health:` tracks.
    pub health_events: usize,
    /// Events on `member:` tracks.
    pub member_events: usize,
    /// Events on `ctl:` tracks.
    pub ctl_events: usize,
    /// Events on `proto:` tracks.
    pub proto_events: usize,
}

/// Validate the routing-plane tracks of a JSONL trace: every event on a
/// `route:`-prefixed track is a `count` of cat `route` named in
/// [`ROUTE_EVENT_NAMES`], with `path_bytes` carrying an integer
/// `args.gateway`; every event on a `gw:`-prefixed track is a `count` of
/// cat `gateway` named in [`GW_EVENT_NAMES`]; every event on an
/// `rt:`-prefixed track is a `count` of cat `runtime` named in
/// [`RT_EVENT_NAMES`]; every event on a `metrics:`-prefixed track is a
/// `count` of cat `metrics` named in [`METRICS_EVENT_NAMES`] (with
/// `stripe_path_bytes` carrying an integer `args.gateway`); every event
/// on a `health:`-prefixed track is a `count` of cat `health` named in
/// [`HEALTH_EVENT_NAMES`]; every event on a `member:`-prefixed track is
/// a `count` of cat `member` named in [`MEMBERSHIP_EVENT_NAMES`]; every
/// event on a `ctl:`-prefixed track is a `count` of cat `ctl` named in
/// [`CONTROL_EVENT_NAMES`]. Traces without such tracks validate
/// trivially (zero counts) — run [`validate_jsonl`] first for the base
/// schema.
pub fn validate_route_tracks(text: &str) -> Result<RouteSummary, String> {
    let mut summary = RouteSummary::default();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let thread = require_str(&v, "thread", line_no)?;
        let (expect_cat, names, counter): (&str, &[&str], &mut usize) =
            if thread.starts_with("route:") {
                ("route", &ROUTE_EVENT_NAMES, &mut summary.route_events)
            } else if thread.starts_with("gw:") {
                ("gateway", &GW_EVENT_NAMES, &mut summary.gw_events)
            } else if thread.starts_with("rt:") {
                ("runtime", &RT_EVENT_NAMES, &mut summary.rt_events)
            } else if thread.starts_with("metrics:") {
                ("metrics", &METRICS_EVENT_NAMES, &mut summary.metrics_events)
            } else if thread.starts_with("health:") {
                ("health", &HEALTH_EVENT_NAMES, &mut summary.health_events)
            } else if thread.starts_with("member:") {
                (
                    "member",
                    &MEMBERSHIP_EVENT_NAMES,
                    &mut summary.member_events,
                )
            } else if thread.starts_with("ctl:") {
                ("ctl", &CONTROL_EVENT_NAMES, &mut summary.ctl_events)
            } else if thread.starts_with("proto:") {
                ("proto", &RENDEZVOUS_EVENT_NAMES, &mut summary.proto_events)
            } else {
                continue;
            };
        let kind = require_str(&v, "kind", line_no)?;
        if kind != "count" {
            return Err(format!(
                "line {line_no}: track \"{thread}\" carries a \"{kind}\" (only counts allowed)"
            ));
        }
        let cat = require_str(&v, "cat", line_no)?;
        if cat != expect_cat {
            return Err(format!(
                "line {line_no}: track \"{thread}\" event has cat \"{cat}\" (expected \"{expect_cat}\")"
            ));
        }
        let name = require_str(&v, "name", line_no)?;
        if !names.contains(&name) {
            return Err(format!(
                "line {line_no}: unknown event \"{name}\" on track \"{thread}\""
            ));
        }
        if matches!(name, "path_bytes" | "stripe_path_bytes")
            && v.get("args")
                .and_then(|a| a.get("gateway"))
                .and_then(|g| g.as_u64())
                .is_none()
        {
            return Err(format!(
                "line {line_no}: \"{name}\" without integer args[\"gateway\"]"
            ));
        }
        *counter += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""\u0041é\u0001""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé\u{1}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn validator_accepts_a_good_trace() {
        let text = "\
{\"ts\":0,\"thread\":\"trace\",\"kind\":\"meta\",\"cat\":\"trace\",\"name\":\"begin\",\"clock\":\"mono\",\"schema\":1}
{\"ts\":5,\"thread\":\"node0\",\"kind\":\"span\",\"cat\":\"bmm\",\"name\":\"flush\",\"dur\":10,\"args\":{\"bytes\":42}}
{\"ts\":7,\"thread\":\"node0\",\"kind\":\"count\",\"cat\":\"ch\",\"name\":\"bytes_sent\",\"value\":42}
{\"ts\":9,\"thread\":\"node1\",\"kind\":\"instant\",\"cat\":\"gw\",\"name\":\"stall\"}
";
        let s = validate_jsonl(text).unwrap();
        assert_eq!(s.lines, 4);
        assert_eq!(s.threads, 3);
        assert_eq!((s.spans, s.counts, s.instants), (1, 1, 1));
    }

    #[test]
    fn validator_rejects_backwards_time() {
        let text = "\
{\"ts\":10,\"thread\":\"a\",\"kind\":\"instant\",\"cat\":\"c\",\"name\":\"n\"}
{\"ts\":3,\"thread\":\"a\",\"kind\":\"instant\",\"cat\":\"c\",\"name\":\"n\"}
";
        let err = validate_jsonl(text).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn route_tracks_validate() {
        let text = "\
{\"ts\":1,\"thread\":\"route:vc\",\"kind\":\"count\",\"cat\":\"route\",\"name\":\"path_bytes\",\"value\":512,\"args\":{\"gateway\":1}}
{\"ts\":1,\"thread\":\"route:vc\",\"kind\":\"count\",\"cat\":\"route\",\"name\":\"failovers\",\"value\":1}
{\"ts\":1,\"thread\":\"route:vc\",\"kind\":\"count\",\"cat\":\"route\",\"name\":\"deaths\",\"value\":1}
{\"ts\":2,\"thread\":\"gw:vc@1\",\"kind\":\"count\",\"cat\":\"gateway\",\"name\":\"delta_bytes\",\"value\":9}
{\"ts\":3,\"thread\":\"node0\",\"kind\":\"instant\",\"cat\":\"route\",\"name\":\"anything-goes\"}
";
        let s = validate_route_tracks(text).unwrap();
        assert_eq!((s.route_events, s.gw_events), (3, 1));
    }

    #[test]
    fn rt_tracks_validate() {
        let text = "\
{\"ts\":1,\"thread\":\"rt:session\",\"kind\":\"count\",\"cat\":\"runtime\",\"name\":\"threads_spawned\",\"value\":7}
{\"ts\":1,\"thread\":\"rt:session\",\"kind\":\"count\",\"cat\":\"runtime\",\"name\":\"reactor_workers\",\"value\":2}
{\"ts\":1,\"thread\":\"rt:session\",\"kind\":\"count\",\"cat\":\"runtime\",\"name\":\"reactor_tasks\",\"value\":4}
{\"ts\":2,\"thread\":\"gw:vc@1\",\"kind\":\"count\",\"cat\":\"gateway\",\"name\":\"threads_spawned\",\"value\":0}
";
        let s = validate_route_tracks(text).unwrap();
        assert_eq!((s.rt_events, s.gw_events), (3, 1));
        // Wrong cat and unknown names on an rt track are rejected.
        let bad_cat = "{\"ts\":1,\"thread\":\"rt:session\",\"kind\":\"count\",\"cat\":\"rt\",\"name\":\"threads_spawned\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_cat).unwrap_err().contains("cat"));
        let bad_name = "{\"ts\":1,\"thread\":\"rt:session\",\"kind\":\"count\",\"cat\":\"runtime\",\"name\":\"zap\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_name)
            .unwrap_err()
            .contains("unknown event"));
    }

    #[test]
    fn metrics_and_health_tracks_validate() {
        let text = "\
{\"ts\":1,\"thread\":\"metrics:node0\",\"kind\":\"count\",\"cat\":\"metrics\",\"name\":\"gw_forward_ns_p99\",\"value\":4096}
{\"ts\":1,\"thread\":\"metrics:node0\",\"kind\":\"count\",\"cat\":\"metrics\",\"name\":\"queue_depth_peak\",\"value\":7}
{\"ts\":1,\"thread\":\"metrics:node0\",\"kind\":\"count\",\"cat\":\"metrics\",\"name\":\"stripe_path_bytes\",\"value\":512,\"args\":{\"gateway\":2}}
{\"ts\":2,\"thread\":\"health:vc@1\",\"kind\":\"count\",\"cat\":\"health\",\"name\":\"credit_starvation\",\"value\":3}
{\"ts\":3,\"thread\":\"health:vc@1\",\"kind\":\"count\",\"cat\":\"health\",\"name\":\"stalled_stream\",\"value\":1}
";
        let s = validate_route_tracks(text).unwrap();
        assert_eq!((s.metrics_events, s.health_events), (3, 2));
        // Unknown metric names, wrong cats, and stripe events without
        // their gateway arg are all rejected.
        let bad_name = "{\"ts\":1,\"thread\":\"metrics:node0\",\"kind\":\"count\",\"cat\":\"metrics\",\"name\":\"zap\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_name)
            .unwrap_err()
            .contains("unknown event"));
        let bad_cat = "{\"ts\":1,\"thread\":\"health:vc@1\",\"kind\":\"count\",\"cat\":\"metrics\",\"name\":\"stalled_stream\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_cat).unwrap_err().contains("cat"));
        let no_gw = "{\"ts\":1,\"thread\":\"metrics:node0\",\"kind\":\"count\",\"cat\":\"metrics\",\"name\":\"stripe_path_bytes\",\"value\":1}\n";
        assert!(validate_route_tracks(no_gw)
            .unwrap_err()
            .contains("gateway"));
    }

    #[test]
    fn member_and_ctl_tracks_validate() {
        let text = "\
{\"ts\":1,\"thread\":\"member:vc@3\",\"kind\":\"count\",\"cat\":\"member\",\"name\":\"phase_connect\",\"value\":1,\"args\":{\"epoch\":2}}
{\"ts\":2,\"thread\":\"member:vc@3\",\"kind\":\"count\",\"cat\":\"member\",\"name\":\"stale_drop\",\"value\":1,\"args\":{\"node\":3,\"epoch\":1}}
{\"ts\":3,\"thread\":\"member:vc@0\",\"kind\":\"count\",\"cat\":\"member\",\"name\":\"rejoins\",\"value\":1}
{\"ts\":4,\"thread\":\"ctl:vc@1\",\"kind\":\"count\",\"cat\":\"ctl\",\"name\":\"window_raise\",\"value\":12}
{\"ts\":5,\"thread\":\"ctl:vc@1\",\"kind\":\"count\",\"cat\":\"ctl\",\"name\":\"adjustments\",\"value\":3}
{\"ts\":6,\"thread\":\"route:vc\",\"kind\":\"count\",\"cat\":\"route\",\"name\":\"readmissions\",\"value\":1}
";
        let s = validate_route_tracks(text).unwrap();
        assert_eq!((s.member_events, s.ctl_events, s.route_events), (3, 2, 1));
        let bad_name = "{\"ts\":1,\"thread\":\"member:vc@0\",\"kind\":\"count\",\"cat\":\"member\",\"name\":\"zap\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_name)
            .unwrap_err()
            .contains("unknown event"));
        let bad_cat = "{\"ts\":1,\"thread\":\"ctl:vc@0\",\"kind\":\"count\",\"cat\":\"member\",\"name\":\"window\",\"value\":8}\n";
        assert!(validate_route_tracks(bad_cat).unwrap_err().contains("cat"));
    }

    #[test]
    fn proto_tracks_validate() {
        let text = "\
{\"ts\":1,\"thread\":\"proto:vc@0\",\"kind\":\"count\",\"cat\":\"proto\",\"name\":\"rendezvous_blocks\",\"value\":4}
{\"ts\":2,\"thread\":\"proto:vc@0\",\"kind\":\"count\",\"cat\":\"proto\",\"name\":\"eager_blocks\",\"value\":9}
{\"ts\":3,\"thread\":\"proto:vc@0\",\"kind\":\"count\",\"cat\":\"proto\",\"name\":\"granted_fragments\",\"value\":128}
{\"ts\":4,\"thread\":\"proto:vc@1\",\"kind\":\"count\",\"cat\":\"proto\",\"name\":\"rts_relayed\",\"value\":4}
{\"ts\":5,\"thread\":\"proto:vc@1\",\"kind\":\"count\",\"cat\":\"proto\",\"name\":\"cts_sent\",\"value\":4}
{\"ts\":6,\"thread\":\"rt:vc@1\",\"kind\":\"count\",\"cat\":\"runtime\",\"name\":\"copies_flush\",\"value\":3}
{\"ts\":7,\"thread\":\"ctl:vc@1\",\"kind\":\"count\",\"cat\":\"ctl\",\"name\":\"rendezvous\",\"value\":65536}
";
        let s = validate_route_tracks(text).unwrap();
        assert_eq!((s.proto_events, s.rt_events, s.ctl_events), (5, 1, 1));
        let bad_name = "{\"ts\":1,\"thread\":\"proto:vc@0\",\"kind\":\"count\",\"cat\":\"proto\",\"name\":\"zap\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_name)
            .unwrap_err()
            .contains("unknown event"));
        let bad_cat = "{\"ts\":1,\"thread\":\"proto:vc@0\",\"kind\":\"count\",\"cat\":\"gateway\",\"name\":\"cts_sent\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_cat).unwrap_err().contains("cat"));
    }

    #[test]
    fn route_tracks_reject_bad_events() {
        // Unknown name on the route track.
        let bad_name = "{\"ts\":1,\"thread\":\"route:vc\",\"kind\":\"count\",\"cat\":\"route\",\"name\":\"zap\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_name)
            .unwrap_err()
            .contains("unknown event"));
        // path_bytes without its gateway arg.
        let no_gw = "{\"ts\":1,\"thread\":\"route:vc\",\"kind\":\"count\",\"cat\":\"route\",\"name\":\"path_bytes\",\"value\":1}\n";
        assert!(validate_route_tracks(no_gw)
            .unwrap_err()
            .contains("gateway"));
        // Wrong cat on a gw track.
        let bad_cat = "{\"ts\":1,\"thread\":\"gw:vc@1\",\"kind\":\"count\",\"cat\":\"gw\",\"name\":\"stalls\",\"value\":1}\n";
        assert!(validate_route_tracks(bad_cat).unwrap_err().contains("cat"));
        // Spans don't belong on counter tracks.
        let bad_kind = "{\"ts\":1,\"thread\":\"route:vc\",\"kind\":\"span\",\"cat\":\"route\",\"name\":\"switches\",\"dur\":2}\n";
        assert!(validate_route_tracks(bad_kind)
            .unwrap_err()
            .contains("only counts"));
        // Unrelated tracks are ignored entirely.
        let other = "{\"ts\":1,\"thread\":\"node0\",\"kind\":\"span\",\"cat\":\"x\",\"name\":\"y\",\"dur\":2}\n";
        assert_eq!(
            validate_route_tracks(other).unwrap(),
            RouteSummary::default()
        );
    }

    #[test]
    fn validator_rejects_missing_keys_and_bad_kinds() {
        assert!(validate_jsonl(
            "{\"ts\":1,\"thread\":\"a\",\"kind\":\"span\",\"cat\":\"c\",\"name\":\"n\"}\n"
        )
        .unwrap_err()
        .contains("dur"));
        assert!(validate_jsonl(
            "{\"ts\":1,\"thread\":\"a\",\"kind\":\"zap\",\"cat\":\"c\",\"name\":\"n\"}\n"
        )
        .unwrap_err()
        .contains("unknown kind"));
        assert!(validate_jsonl(
            "{\"thread\":\"a\",\"kind\":\"meta\",\"cat\":\"c\",\"name\":\"n\"}\n"
        )
        .unwrap_err()
        .contains("ts"));
        assert!(validate_jsonl("").is_err());
    }
}
