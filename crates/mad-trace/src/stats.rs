//! Per-channel traffic counters — the generalization of the gateway's
//! `GatewayStats` to every channel on every node.
//!
//! Counting is always on (it does not require an enabled tracer): the
//! totals are relaxed atomics and the per-peer map is touched once per
//! packet, so the cost is negligible next to a conduit send. The
//! [`ChannelStats::totals`] snapshot is cheap and safe to call mid-run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::Tracer;

/// A level counter that remembers its high-water mark — occupancy-style
/// metrics (bytes resident in a gateway, entries in a queue) where the
/// peak matters as much as the final value.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Raise the level by `n`, updating the peak.
    pub fn add(&self, n: i64) {
        let now = self.current.fetch_add(n, Ordering::Relaxed) + n;
        let mut peak = self.peak.load(Ordering::Relaxed);
        while now > peak {
            match self
                .peak
                .compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
    }

    /// Lower the level by `n`.
    pub fn sub(&self, n: i64) {
        self.current.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn current(&self) -> i64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The highest level ever observed.
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Byte/packet counters for one peer of a channel.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PeerCounters {
    /// Packets sent to this peer.
    pub packets_sent: u64,
    /// Payload bytes sent to this peer.
    pub bytes_sent: u64,
    /// Packets received from this peer.
    pub packets_recv: u64,
    /// Payload bytes received from this peer.
    pub bytes_recv: u64,
}

/// Whole-channel totals (a consistent-enough relaxed snapshot).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChannelTotals {
    /// Packets sent on this channel.
    pub packets_sent: u64,
    /// Payload bytes sent on this channel.
    pub bytes_sent: u64,
    /// Packets received on this channel.
    pub packets_recv: u64,
    /// Payload bytes received on this channel.
    pub bytes_recv: u64,
}

/// Per-channel traffic counters, shared by everything that touches the
/// channel (app threads, gateway polling/forwarding threads).
#[derive(Debug, Default)]
pub struct ChannelStats {
    packets_sent: AtomicU64,
    bytes_sent: AtomicU64,
    packets_recv: AtomicU64,
    bytes_recv: AtomicU64,
    per_peer: Mutex<BTreeMap<u32, PeerCounters>>,
}

impl ChannelStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ChannelStats::default()
    }

    /// Count one packet of `bytes` sent to `peer`.
    pub fn on_send(&self, peer: u32, bytes: usize) {
        self.packets_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        let mut map = self.per_peer.lock().unwrap();
        let c = map.entry(peer).or_default();
        c.packets_sent += 1;
        c.bytes_sent += bytes as u64;
    }

    /// Count one packet of `bytes` received from `peer`.
    pub fn on_recv(&self, peer: u32, bytes: usize) {
        self.packets_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
        let mut map = self.per_peer.lock().unwrap();
        let c = map.entry(peer).or_default();
        c.packets_recv += 1;
        c.bytes_recv += bytes as u64;
    }

    /// Cheap snapshot of the totals; safe to call while traffic is in
    /// flight (each field is individually consistent and monotone).
    pub fn totals(&self) -> ChannelTotals {
        ChannelTotals {
            packets_sent: self.packets_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            packets_recv: self.packets_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
        }
    }

    /// Copy of the per-peer breakdown.
    pub fn per_peer(&self) -> BTreeMap<u32, PeerCounters> {
        self.per_peer.lock().unwrap().clone()
    }

    /// Emit the counters as `count` events on `track` (done once at
    /// session teardown so traces carry the final per-channel totals).
    pub fn flush_to(&self, tracer: &Tracer, track: &str) {
        if !tracer.enabled() {
            return;
        }
        let t = self.totals();
        tracer.count_on(track, "channel", "packets_sent", t.packets_sent as i64, &[]);
        tracer.count_on(track, "channel", "bytes_sent", t.bytes_sent as i64, &[]);
        tracer.count_on(track, "channel", "packets_recv", t.packets_recv as i64, &[]);
        tracer.count_on(track, "channel", "bytes_recv", t.bytes_recv as i64, &[]);
        for (peer, c) in self.per_peer() {
            let args = [("peer", peer as u64)];
            tracer.count_on(
                track,
                "channel",
                "peer_bytes_sent",
                c.bytes_sent as i64,
                &args,
            );
            tracer.count_on(
                track,
                "channel",
                "peer_bytes_recv",
                c.bytes_recv as i64,
                &args,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_level_and_peak() {
        let g = Gauge::new();
        g.add(10);
        g.add(5);
        g.sub(12);
        assert_eq!(g.current(), 3);
        assert_eq!(g.peak(), 15);
        g.add(20);
        assert_eq!(g.peak(), 23);
    }

    #[test]
    fn counters_accumulate_per_peer_and_total() {
        let s = ChannelStats::new();
        s.on_send(1, 100);
        s.on_send(1, 50);
        s.on_send(2, 7);
        s.on_recv(1, 9);
        let t = s.totals();
        assert_eq!(t.packets_sent, 3);
        assert_eq!(t.bytes_sent, 157);
        assert_eq!(t.packets_recv, 1);
        assert_eq!(t.bytes_recv, 9);
        let per = s.per_peer();
        assert_eq!(per[&1].bytes_sent, 150);
        assert_eq!(per[&2].packets_sent, 1);
        assert_eq!(per[&1].bytes_recv, 9);
    }

    #[test]
    fn flush_emits_count_events() {
        let s = ChannelStats::new();
        s.on_send(3, 42);
        let tracer = Tracer::new();
        s.flush_to(&tracer, "ch:test@0");
        let totals = tracer.snapshot().counter_totals();
        assert_eq!(
            totals[&(
                "ch:test@0".to_string(),
                "channel".to_string(),
                "bytes_sent".to_string()
            )],
            42
        );
    }
}
