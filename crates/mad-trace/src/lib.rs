//! `mad-trace` — unified event tracing for the madeleine workspace.
//!
//! One [`Tracer`] handle serves both execution models: simulated runs
//! bind it to the virtual clock (`vtime`, via the `simnet::TraceLog`
//! adapter) and real-backend runs (shm/tcp) bind it to a monotonic
//! [`std::time::Instant`]. Events land in per-thread ring buffers so the
//! hot paths never contend on a global log; a [`Snapshot`] merges the
//! rings afterwards and exports to a stable JSONL schema, a CSV counter
//! dump, or Chrome `trace_event` JSON that loads in Perfetto /
//! `chrome://tracing` (see DESIGN.md, "Observability").
//!
//! Like `mad-util`, this crate is deliberately std-only: no external
//! dependencies, hand-rolled JSON emission and (for the schema checker)
//! a minimal hand-rolled JSON parser.
//!
//! Recording is cheap and falls to almost nothing when disabled: a
//! disabled tracer is a `None` and every entry point is a single branch.
//! The [`trace_span!`]/[`trace_count!`]/[`trace_instant!`] macros
//! additionally compile to a literal no-op when the `noop` feature is
//! on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;
pub mod schema;
mod stats;

pub use export::{Snapshot, ThreadSnapshot};
pub use stats::{ChannelStats, ChannelTotals, Gauge, PeerCounters};

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// `true` unless the crate was built with the `noop` feature; the
/// `trace_*` macros check this constant so the disabled form is
/// branch-free dead code.
pub const COMPILED_IN: bool = cfg!(not(feature = "noop"));

/// Default per-track ring capacity (events kept before the oldest are
/// dropped and counted in [`ThreadSnapshot::dropped`]).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Maximum number of key/value arguments attached to one event;
/// extra arguments are silently discarded.
pub const MAX_ARGS: usize = 4;

/// Version of the JSONL event schema emitted by [`Snapshot`] exporters.
pub const SCHEMA_VERSION: u64 = 1;

/// Time source for a tracer. All timestamps recorded through a tracer
/// come from one clock so spans are comparable across threads.
pub trait TraceClock: Send + Sync {
    /// Current time in nanoseconds since an arbitrary (per-run) origin.
    fn now_ns(&self) -> u64;
}

/// Default clock: monotonic wall time since the binding was created.
struct MonoClock {
    start: Instant,
}

impl TraceClock for MonoClock {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A time interval: `ts_ns .. ts_ns + dur_ns`.
    Span,
    /// A point in time.
    Instant,
    /// A counter increment (`value` is the delta).
    Count,
}

impl EventKind {
    /// Schema string for this kind ("span" / "instant" / "count").
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::Count => "count",
        }
    }
}

/// Fixed-capacity key/value arguments attached to an event. Keys are
/// `&'static str` so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Args {
    len: u8,
    kv: [(&'static str, u64); MAX_ARGS],
}

impl Default for Args {
    fn default() -> Self {
        Args {
            len: 0,
            kv: [("", 0); MAX_ARGS],
        }
    }
}

impl Args {
    /// Empty argument list.
    pub fn new() -> Self {
        Args::default()
    }

    /// Append an argument; silently dropped beyond [`MAX_ARGS`].
    pub fn push(&mut self, key: &'static str, value: u64) {
        if (self.len as usize) < MAX_ARGS {
            self.kv[self.len as usize] = (key, value);
            self.len += 1;
        }
    }

    /// Iterate over the recorded arguments.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kv[..self.len as usize].iter().copied()
    }

    /// True when no arguments were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One recorded event. Category and name are `&'static str` (they name
/// code sites); dynamic identity — which channel, which rank — lives in
/// the track name and in [`Args`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in nanoseconds in the tracer's clock domain.
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero for instants and counts).
    pub dur_ns: u64,
    /// What this event describes.
    pub kind: EventKind,
    /// Subsystem category, e.g. `"gw"`, `"bmm"`, `"gtm"`.
    pub cat: &'static str,
    /// Event name within the category, e.g. `"recv"`, `"flush"`.
    pub name: &'static str,
    /// Counter delta ([`EventKind::Count`] only; zero otherwise).
    pub value: i64,
    /// Optional key/value arguments.
    pub args: Args,
}

struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

struct TrackLog {
    name: String,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl TrackLog {
    fn push(&self, ev: Event) {
        let mut r = self.ring.lock().unwrap();
        if r.events.len() >= self.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        r.events.push_back(ev);
    }
}

struct ClockBinding {
    clock: Arc<dyn TraceClock>,
    domain: &'static str,
}

struct Inner {
    capacity: usize,
    clock: OnceLock<ClockBinding>,
    tracks: Mutex<Vec<Arc<TrackLog>>>,
}

thread_local! {
    // Per-thread cache of (tracer identity -> this thread's track), so
    // the hot recording path skips the tracks mutex.
    static TRACK_CACHE: RefCell<Vec<(usize, Arc<TrackLog>)>> = const { RefCell::new(Vec::new()) };
}

/// Handle to an event recorder. Cloning is cheap (an `Arc`); a
/// disabled tracer ([`Tracer::off`], also the `Default`) records
/// nothing and costs one branch per call.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer: every recording call is a cheap no-op.
    pub const fn off() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer keeping at most `capacity` events per track
    /// (older events are dropped and counted).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                capacity: capacity.max(1),
                clock: OnceLock::new(),
                tracks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Bind the clock and its domain name (`"sim"` / `"mono"`). Only
    /// the first binding wins; returns `false` if a clock was already
    /// bound (or the tracer is disabled). Unbound tracers lazily fall
    /// back to a monotonic clock on first use.
    pub fn init_clock(&self, clock: Arc<dyn TraceClock>, domain: &'static str) -> bool {
        match &self.inner {
            Some(i) => i.clock.set(ClockBinding { clock, domain }).is_ok(),
            None => false,
        }
    }

    fn binding(inner: &Inner) -> &ClockBinding {
        inner.clock.get_or_init(|| ClockBinding {
            clock: Arc::new(MonoClock {
                start: Instant::now(),
            }),
            domain: "mono",
        })
    }

    /// Current time in the tracer's clock domain (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(i) => Self::binding(i).clock.now_ns(),
            None => 0,
        }
    }

    /// The clock domain name (`"sim"`, `"mono"`, or `"off"`).
    pub fn clock_domain(&self) -> &'static str {
        match &self.inner {
            Some(i) => Self::binding(i).domain,
            None => "off",
        }
    }

    fn track_named(inner: &Inner, name: &str) -> Arc<TrackLog> {
        let mut tracks = inner.tracks.lock().unwrap();
        if let Some(t) = tracks.iter().find(|t| t.name == name) {
            return t.clone();
        }
        let log = Arc::new(TrackLog {
            name: name.to_string(),
            capacity: inner.capacity,
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
        });
        tracks.push(log.clone());
        log
    }

    fn track_for_current_thread(&self, inner: &Arc<Inner>) -> Arc<TrackLog> {
        let key = Arc::as_ptr(inner) as usize;
        TRACK_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, log)) = cache.iter().find(|(k, _)| *k == key) {
                return log.clone();
            }
            let thread = std::thread::current();
            let log = Self::track_named(inner, thread.name().unwrap_or("<unnamed>"));
            if cache.len() >= 64 {
                cache.clear();
            }
            cache.push((key, log.clone()));
            log
        })
    }

    /// Open a span on the current thread's track; it records itself
    /// when the returned guard drops. Prefer the [`trace_span!`] macro,
    /// which also compiles out under the `noop` feature.
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard {
        match &self.inner {
            Some(i) => {
                let t0 = Self::binding(i).clock.now_ns();
                SpanGuard {
                    state: Some(SpanState {
                        inner: i.clone(),
                        log: self.track_for_current_thread(i),
                        t0,
                        cat,
                        name,
                        args: Args::default(),
                    }),
                }
            }
            None => SpanGuard::disabled(),
        }
    }

    /// Record a point event on the current thread's track.
    pub fn instant(&self, cat: &'static str, name: &'static str, args: &[(&'static str, u64)]) {
        let Some(i) = &self.inner else { return };
        let ts = Self::binding(i).clock.now_ns();
        let mut a = Args::default();
        for &(k, v) in args {
            a.push(k, v);
        }
        self.track_for_current_thread(i).push(Event {
            ts_ns: ts,
            dur_ns: 0,
            kind: EventKind::Instant,
            cat,
            name,
            value: 0,
            args: a,
        });
    }

    /// Record a counter delta on the current thread's track.
    pub fn count(&self, cat: &'static str, name: &'static str, delta: i64) {
        let Some(i) = &self.inner else { return };
        let ts = Self::binding(i).clock.now_ns();
        self.track_for_current_thread(i).push(Event {
            ts_ns: ts,
            dur_ns: 0,
            kind: EventKind::Count,
            cat,
            name,
            value: delta,
            args: Args::default(),
        });
    }

    /// Record a counter delta on an explicitly named track (used when
    /// the logical owner of the counter is not a thread — e.g. a
    /// channel's end-of-run totals).
    pub fn count_on(
        &self,
        track: &str,
        cat: &'static str,
        name: &'static str,
        delta: i64,
        args: &[(&'static str, u64)],
    ) {
        let Some(i) = &self.inner else { return };
        let ts = Self::binding(i).clock.now_ns();
        let mut a = Args::default();
        for &(k, v) in args {
            a.push(k, v);
        }
        Self::track_named(i, track).push(Event {
            ts_ns: ts,
            dur_ns: 0,
            kind: EventKind::Count,
            cat,
            name,
            value: delta,
            args: a,
        });
    }

    /// Record a pre-timed span on an explicitly named track. This is
    /// the bridge for recorders that already know both endpoints (the
    /// simulator charges virtual-time spans after the fact).
    pub fn span_at(
        &self,
        track: &str,
        cat: &'static str,
        name: &'static str,
        ts_ns: u64,
        dur_ns: u64,
    ) {
        let Some(i) = &self.inner else { return };
        Self::track_named(i, track).push(Event {
            ts_ns,
            dur_ns,
            kind: EventKind::Span,
            cat,
            name,
            value: 0,
            args: Args::default(),
        });
    }

    /// Collect everything recorded so far. Tracks with the same name
    /// are merged and each track's events are sorted by timestamp (the
    /// rings themselves are append-ordered, which for `span_at` is not
    /// time order). Recording may continue afterwards; the snapshot is
    /// a consistent point-in-time copy.
    pub fn snapshot(&self) -> Snapshot {
        let Some(i) = &self.inner else {
            return Snapshot {
                domain: "off",
                threads: Vec::new(),
            };
        };
        let domain = Self::binding(i).domain;
        let logs: Vec<Arc<TrackLog>> = i.tracks.lock().unwrap().clone();
        let mut threads: Vec<ThreadSnapshot> = Vec::new();
        for log in logs {
            let r = log.ring.lock().unwrap();
            let (events, dropped): (Vec<Event>, u64) =
                (r.events.iter().copied().collect(), r.dropped);
            drop(r);
            match threads.iter_mut().find(|t| t.name == log.name) {
                Some(t) => {
                    t.events.extend(events);
                    t.dropped += dropped;
                }
                None => threads.push(ThreadSnapshot {
                    name: log.name.clone(),
                    dropped,
                    events,
                }),
            }
        }
        for t in &mut threads {
            t.events.sort_by_key(|e| e.ts_ns);
        }
        Snapshot { domain, threads }
    }
}

struct SpanState {
    inner: Arc<Inner>,
    log: Arc<TrackLog>,
    t0: u64,
    cat: &'static str,
    name: &'static str,
    args: Args,
}

/// Guard returned by [`Tracer::span`]; records the span when dropped.
#[must_use = "the span is recorded when the guard drops"]
pub struct SpanGuard {
    state: Option<SpanState>,
}

impl SpanGuard {
    /// A guard that records nothing (what a disabled tracer returns).
    pub fn disabled() -> Self {
        SpanGuard { state: None }
    }

    /// Attach a key/value argument (builder style; silently dropped
    /// beyond [`MAX_ARGS`] or on a disabled guard).
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if let Some(s) = &mut self.state {
            s.args.push(key, value);
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            let now = Tracer::binding(&s.inner).clock.now_ns();
            s.log.push(Event {
                ts_ns: s.t0,
                dur_ns: now.saturating_sub(s.t0),
                kind: EventKind::Span,
                cat: s.cat,
                name: s.name,
                value: 0,
                args: s.args,
            });
        }
    }
}

/// Open a span on `tracer`'s current-thread track; binds the returned
/// guard's lifetime to the enclosing scope. Optional trailing
/// `"key" = value` pairs become span arguments. Compiles to a disabled
/// guard under the `noop` feature.
///
/// ```
/// # let tracer = mad_trace::Tracer::new();
/// # let bytes = 3usize;
/// let _s = mad_trace::trace_span!(tracer, "bmm", "flush", "bytes" = bytes as u64);
/// ```
#[macro_export]
macro_rules! trace_span {
    ($tracer:expr, $cat:literal, $name:literal $(, $k:literal = $v:expr)* $(,)?) => {
        if $crate::COMPILED_IN && $tracer.enabled() {
            $tracer.span($cat, $name)$(.arg($k, $v))*
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Record a counter delta on `tracer`'s current-thread track. Compiles
/// to nothing under the `noop` feature.
#[macro_export]
macro_rules! trace_count {
    ($tracer:expr, $cat:literal, $name:literal, $delta:expr) => {
        if $crate::COMPILED_IN && $tracer.enabled() {
            $tracer.count($cat, $name, $delta);
        }
    };
}

/// Record an instant on `tracer`'s current-thread track, with optional
/// `"key" = value` arguments. Compiles to nothing under the `noop`
/// feature.
#[macro_export]
macro_rules! trace_instant {
    ($tracer:expr, $cat:literal, $name:literal $(, $k:literal = $v:expr)* $(,)?) => {
        if $crate::COMPILED_IN && $tracer.enabled() {
            $tracer.instant($cat, $name, &[$(($k, $v)),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedClock(std::sync::atomic::AtomicU64);
    impl TraceClock for FixedClock {
        fn now_ns(&self) -> u64 {
            self.0.fetch_add(10, std::sync::atomic::Ordering::Relaxed)
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::off();
        assert!(!t.enabled());
        let _s = trace_span!(t, "a", "b");
        trace_count!(t, "a", "c", 5);
        trace_instant!(t, "a", "d");
        t.count_on("x", "a", "e", 1, &[]);
        let snap = t.snapshot();
        assert!(snap.threads.is_empty());
        assert_eq!(snap.domain, "off");
    }

    // Exercises the macros, which are compiled out under `noop`.
    #[cfg(not(feature = "noop"))]
    #[test]
    fn spans_counts_instants_are_recorded() {
        let t = Tracer::new();
        assert!(t.init_clock(
            Arc::new(FixedClock(std::sync::atomic::AtomicU64::new(0))),
            "sim"
        ));
        assert!(!t.init_clock(
            Arc::new(FixedClock(std::sync::atomic::AtomicU64::new(0))),
            "mono"
        ));
        {
            let _s = trace_span!(t, "gw", "recv", "peer" = 3);
        }
        trace_count!(t, "gtm", "encode", 2);
        trace_instant!(t, "gw", "stall", "depth" = 1);
        let snap = t.snapshot();
        assert_eq!(snap.domain, "sim");
        assert_eq!(snap.threads.len(), 1);
        let evs = &snap.threads[0].events;
        assert_eq!(evs.len(), 3);
        let span = evs.iter().find(|e| e.kind == EventKind::Span).unwrap();
        assert_eq!((span.cat, span.name), ("gw", "recv"));
        assert_eq!(span.dur_ns, 10);
        assert_eq!(span.args.iter().collect::<Vec<_>>(), vec![("peer", 3)]);
        let count = evs.iter().find(|e| e.kind == EventKind::Count).unwrap();
        assert_eq!(count.value, 2);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.count_on("ring", "t", "n", i, &[]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.threads.len(), 1);
        let th = &snap.threads[0];
        assert_eq!(th.events.len(), 4);
        assert_eq!(th.dropped, 6);
        // The survivors are the newest four deltas.
        let vals: Vec<i64> = th.events.iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![6, 7, 8, 9]);
    }

    #[test]
    fn args_cap_at_max() {
        let mut a = Args::new();
        for i in 0..(MAX_ARGS as u64 + 3) {
            a.push("k", i);
        }
        assert_eq!(a.iter().count(), MAX_ARGS);
    }

    #[test]
    fn tracks_with_same_name_merge_and_sort() {
        let t = Tracer::new();
        t.span_at("lane", "copy", "copy", 100, 5);
        t.span_at("lane", "copy", "copy", 20, 5);
        let snap = t.snapshot();
        let th = snap.threads.iter().find(|t| t.name == "lane").unwrap();
        let ts: Vec<u64> = th.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![20, 100]);
    }
}
