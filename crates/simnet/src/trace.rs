//! Span traces of simulated activity, for the pipeline-timeline figures.
//!
//! The paper's Figures 5 and 8 are timelines of the gateway's receive and
//! send steps (ideal overlap versus PCI-conflicted). [`TraceLog`] collects
//! labeled `[start, end]` spans from instrumented code so the bench harness
//! can print the same timelines.

use std::sync::Arc;

use mad_util::sync::Mutex;
use vtime::SimTime;

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A packet being received (link + inbound PCI).
    Recv,
    /// A packet being sent (outbound PCI + link).
    Send,
    /// A memory copy.
    Copy,
    /// Software overhead (e.g. the gateway buffer switch).
    Overhead,
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraceKind::Recv => "recv",
            TraceKind::Send => "send",
            TraceKind::Copy => "copy",
            TraceKind::Overhead => "overhead",
        };
        f.write_str(s)
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Which component produced the span (e.g. `"gw-recv"`).
    pub label: String,
    /// Span category.
    pub kind: TraceKind,
    /// Span start, virtual time.
    pub start: SimTime,
    /// Span end, virtual time.
    pub end: SimTime,
}

/// A shareable, append-only span log.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceLog {
    /// Create an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Append a span.
    pub fn record(&self, label: impl Into<String>, kind: TraceKind, start: SimTime, end: SimTime) {
        self.events.lock().push(TraceEvent {
            label: label.into(),
            kind,
            start,
            end,
        });
    }

    /// Snapshot of all recorded spans, in insertion order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Total time covered by spans of `kind` under `label`, in seconds.
    pub fn total_secs(&self, label: &str, kind: TraceKind) -> f64 {
        self.events
            .lock()
            .iter()
            .filter(|e| e.kind == kind && e.label == label)
            .map(|e| e.end.since(e.start).as_secs_f64())
            .sum()
    }
}
