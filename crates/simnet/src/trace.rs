//! Span traces of simulated activity, for the pipeline-timeline figures.
//!
//! The paper's Figures 5 and 8 are timelines of the gateway's receive and
//! send steps (ideal overlap versus PCI-conflicted). [`TraceLog`] collects
//! labeled `[start, end]` spans from instrumented code so the bench harness
//! can print the same timelines.
//!
//! Since the introduction of the unified `mad-trace` recorder, `TraceLog`
//! is a thin, API-compatible façade over a [`mad_trace::Tracer`]: spans are
//! stored as `driver/<kind>` events on a per-label track, alongside whatever
//! the Madeleine hot paths record on the same tracer. The full event stream
//! (exporters, JSONL schema) is reachable through [`TraceLog::tracer`].

use vtime::SimTime;

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A packet being received (link + inbound PCI).
    Recv,
    /// A packet being sent (outbound PCI + link).
    Send,
    /// A memory copy.
    Copy,
    /// Software overhead (e.g. the gateway buffer switch).
    Overhead,
}

impl TraceKind {
    /// The event name this kind maps to in the unified trace schema
    /// (category `"driver"`).
    pub fn cat(self) -> &'static str {
        match self {
            TraceKind::Recv => "recv",
            TraceKind::Send => "send",
            TraceKind::Copy => "copy",
            TraceKind::Overhead => "overhead",
        }
    }

    /// Inverse of [`TraceKind::cat`]; `None` for event names that did not
    /// come from a driver span (Madeleine hot-path spans share the tracer).
    pub fn from_cat(name: &str) -> Option<TraceKind> {
        match name {
            "recv" => Some(TraceKind::Recv),
            "send" => Some(TraceKind::Send),
            "copy" => Some(TraceKind::Copy),
            "overhead" => Some(TraceKind::Overhead),
            _ => None,
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.cat())
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Which component produced the span (e.g. `"gw-recv"`).
    pub label: String,
    /// Span category.
    pub kind: TraceKind,
    /// Span start, virtual time.
    pub start: SimTime,
    /// Span end, virtual time.
    pub end: SimTime,
}

/// A shareable, append-only span log backed by the unified tracer.
#[derive(Debug, Clone)]
pub struct TraceLog {
    tracer: mad_trace::Tracer,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new()
    }
}

impl TraceLog {
    /// Create an empty log with its own enabled tracer.
    pub fn new() -> Self {
        TraceLog {
            tracer: mad_trace::Tracer::new(),
        }
    }

    /// Wrap an existing tracer (so driver spans and Madeleine hot-path
    /// events land in one stream). A disabled tracer makes every `record`
    /// a no-op.
    pub fn with_tracer(tracer: mad_trace::Tracer) -> Self {
        TraceLog { tracer }
    }

    /// The underlying unified tracer (hand to exporters, or to
    /// `SessionBuilder` runtimes so library events join driver spans).
    pub fn tracer(&self) -> &mad_trace::Tracer {
        &self.tracer
    }

    /// Append a span.
    pub fn record(&self, label: impl Into<String>, kind: TraceKind, start: SimTime, end: SimTime) {
        self.tracer.span_at(
            &label.into(),
            "driver",
            kind.cat(),
            start.as_nanos(),
            end.since(start).as_nanos(),
        );
    }

    /// Snapshot of all recorded driver spans, ordered by start time within
    /// each label. Spans recorded by Madeleine itself (category other than
    /// `"driver"`) are not included; use [`TraceLog::tracer`] for those.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let snap = self.tracer.snapshot();
        let mut out = Vec::new();
        for t in &snap.threads {
            for e in &t.events {
                if e.kind != mad_trace::EventKind::Span || e.cat != "driver" {
                    continue;
                }
                let Some(kind) = TraceKind::from_cat(e.name) else {
                    continue;
                };
                out.push(TraceEvent {
                    label: t.name.clone(),
                    kind,
                    start: SimTime(e.ts_ns),
                    end: SimTime(e.ts_ns + e.dur_ns),
                });
            }
        }
        out
    }

    /// Number of recorded driver spans.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True if no driver span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total time covered by spans of `kind` under `label`, in seconds.
    pub fn total_secs(&self, label: &str, kind: TraceKind) -> f64 {
        self.snapshot()
            .iter()
            .filter(|e| e.kind == kind && e.label == label)
            .map(|e| e.end.since(e.start).as_secs_f64())
            .sum()
    }
}
