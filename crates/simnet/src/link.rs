//! Serialized point-to-point link model.
//!
//! A [`Link`] is one *direction* of a physical cable: packets occupy it back
//! to back at the link bandwidth, then experience a fixed propagation +
//! switching latency. Full-duplex networks (Myrinet, SCI) use two `Link`
//! instances per cable, so opposite directions never queue behind each other.

use mad_util::sync::Mutex;
use vtime::{SimDuration, SimTime};

/// One direction of a cable: bandwidth-serialized occupancy plus latency.
#[derive(Debug)]
pub struct Link {
    bw_bps: f64,
    latency: SimDuration,
    busy_until_ns: Mutex<u64>,
}

impl Link {
    /// Create a link with `bw_bps` bytes/second and fixed `latency`.
    pub fn new(bw_bps: f64, latency: SimDuration) -> Self {
        assert!(bw_bps > 0.0, "link bandwidth must be positive");
        Link {
            bw_bps,
            latency,
            busy_until_ns: Mutex::new(0),
        }
    }

    /// Link bandwidth in bytes per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bw_bps
    }

    /// Propagation + switching latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Reserve occupancy for a `bytes`-long packet entering the link at
    /// `now` (or as soon as the wire frees up) and return its delivery time
    /// at the far end.
    pub fn schedule(&self, now: SimTime, bytes: u64) -> SimTime {
        let occupancy_ns = ((bytes as f64 / self.bw_bps) * 1e9).ceil() as u64;
        let mut busy = self.busy_until_ns.lock();
        let start = (*busy).max(now.as_nanos());
        *busy = start.saturating_add(occupancy_ns);
        SimTime(*busy).after(self.latency)
    }
}
