//! Hosts, network parameter sets, and modeled NIC endpoints.
//!
//! A [`Host`] owns one PCI [`FluidBus`]; an [`Endpoint`] is one side of a
//! point-to-point NIC connection attached to a host. Sending a packet
//! through an endpoint charges, in order: the per-packet host/protocol
//! overhead, the outbound PCI transfer (contending on the host bus in its
//! arbitration class), and the link occupancy (as a delivery timestamp).
//! Receiving charges the wait until delivery, the inbound host overhead, and
//! the inbound PCI transfer.

use std::sync::Arc;

use mad_util::sync::Mutex;
use vtime::{
    mailbox_with_signal, Actor, Clock, MailReceiver, MailSender, Signal, SimDuration, SimTime,
};

use crate::fault::{FaultCell, FaultRegistry, LinkFault};
use crate::fluid::{Arbitration, FluidBus, XferClass, XferDir};
use crate::link::Link;

/// Timing parameters of one network technology. See
/// [`crate::calibration`] for the paper's instances.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Human-readable technology name.
    pub name: &'static str,
    /// Cable bandwidth, bytes/second (per direction).
    pub link_bw_bps: f64,
    /// Cable propagation + switching latency.
    pub latency: SimDuration,
    /// Device ceiling for outbound PCI transfers, bytes/second.
    pub dev_out_bps: f64,
    /// Device ceiling for inbound PCI transfers, bytes/second.
    pub dev_in_bps: f64,
    /// Arbitration class of outbound transfers (who masters the bus).
    pub out_class: XferClass,
    /// Arbitration class of inbound transfers.
    pub in_class: XferClass,
    /// Fixed per-packet cost on the sending host (driver, protocol stack).
    pub overhead_send: SimDuration,
    /// Fixed per-packet cost on the receiving host.
    pub overhead_recv: SimDuration,
}

/// A simulated machine: a name and its shared PCI bus.
#[derive(Debug)]
pub struct Host {
    name: String,
    bus: FluidBus,
}

impl Host {
    /// Host name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The host's PCI bus, for direct instrumentation.
    pub fn bus(&self) -> &FluidBus {
        &self.bus
    }
}

/// A packet in flight: payload plus the modeled arrival time at the far NIC.
#[derive(Debug)]
pub struct Frame {
    /// The payload bytes (real data — the stack above moves actual bytes).
    pub data: Vec<u8>,
    /// When the far end may start its inbound processing.
    pub deliver_at: SimTime,
}

/// Builder/owner of a simulated network fabric on one virtual clock.
#[derive(Debug, Clone)]
pub struct SimNet {
    clock: Clock,
    faults: Arc<Mutex<FaultRegistry>>,
}

impl SimNet {
    /// Create a fabric on `clock`.
    pub fn new(clock: &Clock) -> Self {
        SimNet {
            clock: clock.clone(),
            faults: Arc::new(Mutex::new(FaultRegistry::default())),
        }
    }

    /// The underlying clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Inject a fault on the `from` → `to` direction of any cable wired
    /// between these hosts. Replaces a previously registered fault on the
    /// same direction. Live: already-wired cables share their fault state
    /// with the registry and see the change immediately.
    pub fn fault_link(&self, from: &Arc<Host>, to: &Arc<Host>, fault: LinkFault) {
        self.faults.lock().fault_link(from.name(), to.name(), fault);
    }

    /// Remove any link-level fault on the `from` → `to` direction (host
    /// deaths are unaffected). Live, like [`SimNet::fault_link`].
    pub fn heal_link(&self, from: &Arc<Host>, to: &Arc<Host>) {
        self.faults.lock().heal_link(from.name(), to.name());
    }

    /// Silently kill `host` at virtual instant `after`: every direction
    /// touching it drops packets sent past that instant without notifying
    /// anyone. Live: wired cables see the death immediately.
    pub fn kill_host(&self, host: &Arc<Host>, after: SimTime) {
        self.faults.lock().kill_host(host.name(), after);
    }

    /// Erase `host`'s death record: every direction touching it delivers
    /// again (unless the link itself carries a `dead_after` fault). The
    /// inverse of [`SimNet::kill_host`]; a later kill re-arms the death.
    pub fn revive_host(&self, host: &Arc<Host>) {
        self.faults.lock().revive_host(host.name());
    }

    /// Create a host with the given PCI arbitration policy.
    pub fn host(&self, name: impl Into<String>, arb: Arbitration) -> Arc<Host> {
        Arc::new(Host {
            name: name.into(),
            bus: FluidBus::new(&self.clock, arb),
        })
    }

    /// Connect two hosts with a full-duplex cable of technology `params`,
    /// returning the endpoint at `a` and the endpoint at `b`.
    ///
    /// Each endpoint's receive queue bumps a dedicated signal; use
    /// [`SimNet::wire_with_signals`] to share a signal across several
    /// endpoints of one host (multiplexed polling).
    pub fn wire(&self, a: &Arc<Host>, b: &Arc<Host>, params: NetParams) -> (Endpoint, Endpoint) {
        self.wire_with_signals(a, b, params, self.clock.signal(), self.clock.signal())
    }

    /// Like [`SimNet::wire`], with caller-provided receive signals for the
    /// endpoint at `a` and the endpoint at `b` respectively.
    pub fn wire_with_signals(
        &self,
        a: &Arc<Host>,
        b: &Arc<Host>,
        params: NetParams,
        rx_signal_a: Signal,
        rx_signal_b: Signal,
    ) -> (Endpoint, Endpoint) {
        let ab = Arc::new(Link::new(params.link_bw_bps, params.latency));
        let ba = Arc::new(Link::new(params.link_bw_bps, params.latency));
        let (tx_to_b, rx_at_b) = mailbox_with_signal::<Frame>(rx_signal_b);
        let (tx_to_a, rx_at_a) = mailbox_with_signal::<Frame>(rx_signal_a);
        let (fault_ab, fault_ba) = {
            let mut reg = self.faults.lock();
            (
                reg.effective(a.name(), b.name()),
                reg.effective(b.name(), a.name()),
            )
        };
        let ep_a = Endpoint {
            clock: self.clock.clone(),
            host: a.clone(),
            params,
            out_link: ab,
            tx: tx_to_b,
            rx: rx_at_a,
            fault: fault_ab,
        };
        let ep_b = Endpoint {
            clock: self.clock.clone(),
            host: b.clone(),
            params,
            out_link: ba,
            tx: tx_to_a,
            rx: rx_at_b,
            fault: fault_ba,
        };
        (ep_a, ep_b)
    }
}

/// One side of a modeled NIC-to-NIC connection. Packet-oriented, reliable,
/// in-order — the service level BIP and SISCI offer Madeleine.
#[derive(Debug)]
pub struct Endpoint {
    clock: Clock,
    host: Arc<Host>,
    params: NetParams,
    out_link: Arc<Link>,
    tx: MailSender<Frame>,
    rx: MailReceiver<Frame>,
    /// Fault state of this endpoint's *outbound* direction — shared live
    /// with the registry, so mid-run kills/revives are visible here.
    fault: Arc<FaultCell>,
}

impl Endpoint {
    /// The technology parameters of this endpoint.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// The host this endpoint's NIC is plugged into.
    pub fn host(&self) -> &Arc<Host> {
        &self.host
    }

    /// Send one packet, blocking `actor` for the modeled send-side costs.
    /// Returns `false` if the far endpoint was dropped (session teardown)
    /// — or if an injected fault killed this direction: the send-side
    /// overhead is still charged (the sender cannot tell yet), then the
    /// packet silently vanishes. Use [`Endpoint::peer_dead`] to tell the
    /// two apart.
    #[must_use]
    pub fn send(&self, actor: &Actor, data: Vec<u8>) -> bool {
        actor.sleep(self.params.overhead_send);
        if self.fault.dead_at(actor.now()) {
            return false;
        }
        self.host.bus.transfer(
            actor,
            self.params.out_class,
            XferDir::Out,
            data.len() as u64,
            self.params.dev_out_bps,
        );
        let deliver_at = self
            .fault
            .perturb(self.out_link.schedule(actor.now(), data.len() as u64));
        self.tx.send(Frame { data, deliver_at }).is_ok()
    }

    /// Receive the next packet, blocking `actor` for delivery plus the
    /// modeled receive-side costs. Returns `None` if the peer disconnected.
    pub fn recv(&self, actor: &Actor) -> Option<Vec<u8>> {
        let frame = self.rx.recv(actor).ok()?;
        let now = actor.now();
        if frame.deliver_at > now {
            actor.sleep(frame.deliver_at.since(now));
        }
        actor.sleep(self.params.overhead_recv);
        self.host.bus.transfer(
            actor,
            self.params.in_class,
            XferDir::In,
            frame.data.len() as u64,
            self.params.dev_in_bps,
        );
        Some(frame.data)
    }

    /// True if a frame is queued (it may not have *arrived* yet in modeled
    /// time; `recv` still charges the remaining delivery wait).
    pub fn ready(&self) -> bool {
        self.rx.has_pending()
    }

    /// True if a frame is queued *and* its modeled arrival time has
    /// passed — the NIC holds deliverable data right now. A frame whose
    /// `deliver_at` is still in the future is on the wire from this
    /// host's point of view: [`Endpoint::ready`] sees it (the sender ran
    /// ahead in wall time), but nothing is awaiting service yet.
    pub fn deliverable(&self) -> bool {
        self.rx
            .peek_map(|f| f.deliver_at <= self.clock.now())
            .unwrap_or(false)
    }

    /// True once the peer endpoint is gone and no frame remains queued.
    pub fn closed(&self) -> bool {
        self.rx.is_closed()
    }

    /// True once an injected fault has silently killed this endpoint's
    /// outbound direction (at the current virtual instant). Distinguishes
    /// a failed [`Endpoint::send`] caused by peer death from an ordinary
    /// teardown disconnect.
    pub fn peer_dead(&self) -> bool {
        self.fault.dead_at(self.clock.now())
    }

    /// The signal bumped whenever a frame is enqueued for this endpoint.
    pub fn recv_signal(&self) -> &Signal {
        self.rx.signal()
    }

    /// The virtual clock, for drivers needing timestamps.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
}
