//! Fault injection for the modeled fabric.
//!
//! The paper's gateway was evaluated on a healthy cluster; its §4 future
//! work (flow control, robustness) is exactly about what happens when the
//! fabric is *not* healthy. This module lets a test perturb individual
//! link directions deterministically:
//!
//! * **jitter** — a seeded uniform delay added to each packet's delivery
//!   time, shaking the pipeline out of its lockstep schedule;
//! * **stalls** — with a configured probability a packet is additionally
//!   held for a fixed stall duration, modeling a transient link hiccup;
//! * **silent death** — from a configured instant, sends on the direction
//!   charge their normal send-side overhead and then vanish: the far end
//!   is never notified, exactly like a crashed peer whose NIC stopped
//!   acking. The mailbox stays open, so the receiver keeps waiting — only
//!   a deadline above (credit or drain timeout) can detect the loss.
//!
//! Faults are registered on the [`crate::SimNet`] *before* the session
//! wires its conduit meshes; each direction of each wired cable captures
//! its effective fault (and its own seeded RNG) at wire time.

use mad_util::rng::Rng;
use mad_util::sync::Mutex;
use std::collections::HashMap;
use vtime::{SimDuration, SimTime};

/// Fault description for one direction of one link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkFault {
    /// Uniform random extra delivery delay in `[0, jitter_max]` per packet.
    pub jitter_max: SimDuration,
    /// Probability that a packet is stalled for [`LinkFault::stall`].
    pub stall_prob: f64,
    /// Extra delivery delay of a stalled packet.
    pub stall: SimDuration,
    /// From this instant on, sends silently vanish (overhead is still
    /// charged, the receiver is never notified). `None` = never dies.
    pub dead_after: Option<SimTime>,
    /// Base RNG seed; mixed with the host names so each direction draws
    /// an independent deterministic sequence.
    pub seed: u64,
}

impl LinkFault {
    /// True if this fault perturbs anything at all.
    fn is_active(&self) -> bool {
        self.jitter_max > SimDuration::ZERO
            || (self.stall_prob > 0.0 && self.stall > SimDuration::ZERO)
            || self.dead_after.is_some()
    }
}

/// The per-direction state an [`crate::Endpoint`] carries once wired
/// across a faulty direction.
#[derive(Debug)]
pub(crate) struct FaultState {
    fault: LinkFault,
    rng: Mutex<Rng>,
}

impl FaultState {
    /// True once the direction has gone silently dead at `now`.
    pub(crate) fn dead_at(&self, now: SimTime) -> bool {
        self.fault.dead_after.is_some_and(|t| now >= t)
    }

    /// Perturb a packet's delivery time with jitter and stalls.
    pub(crate) fn perturb(&self, deliver_at: SimTime) -> SimTime {
        let mut rng = self.rng.lock();
        let mut at = deliver_at;
        if self.fault.jitter_max > SimDuration::ZERO {
            let extra = rng.gen_range(0..self.fault.jitter_max.as_nanos().saturating_add(1));
            at = at.after(SimDuration::from_nanos(extra));
        }
        if self.fault.stall > SimDuration::ZERO && rng.bool_with(self.fault.stall_prob) {
            at = at.after(self.fault.stall);
        }
        at
    }
}

/// FNV-1a over a byte string — stable, dependency-free name hashing for
/// per-direction seed derivation.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Registry of pending faults, consulted when links are wired.
#[derive(Debug, Default)]
pub(crate) struct FaultRegistry {
    /// Directional faults keyed by (sender host, receiver host) name.
    links: HashMap<(String, String), LinkFault>,
    /// Hosts whose every direction dies at the recorded instant.
    dead_hosts: HashMap<String, SimTime>,
}

impl FaultRegistry {
    /// Register a fault on the `from` → `to` direction (replaces any
    /// previously registered fault on that direction).
    pub(crate) fn fault_link(&mut self, from: &str, to: &str, fault: LinkFault) {
        self.links.insert((from.to_string(), to.to_string()), fault);
    }

    /// Mark every direction touching `host` dead from `after` on.
    pub(crate) fn kill_host(&mut self, host: &str, after: SimTime) {
        let entry = self.dead_hosts.entry(host.to_string()).or_insert(after);
        *entry = (*entry).min(after);
    }

    /// The effective fault state for the `from` → `to` direction, if any.
    pub(crate) fn effective(&self, from: &str, to: &str) -> Option<FaultState> {
        let mut fault = self
            .links
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or_default();
        let host_death = [from, to]
            .iter()
            .filter_map(|h| self.dead_hosts.get(*h))
            .min()
            .copied();
        if let Some(t) = host_death {
            fault.dead_after = Some(fault.dead_after.map_or(t, |d| d.min(t)));
        }
        if !fault.is_active() {
            return None;
        }
        let seed = fault.seed ^ fnv(from) ^ fnv(to).rotate_left(17);
        Some(FaultState {
            fault,
            rng: Mutex::new(Rng::new(seed)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_direction_has_no_state() {
        let reg = FaultRegistry::default();
        assert!(reg.effective("a", "b").is_none());
    }

    #[test]
    fn directions_are_independent() {
        let mut reg = FaultRegistry::default();
        reg.fault_link(
            "a",
            "b",
            LinkFault {
                jitter_max: SimDuration::from_micros(10),
                ..Default::default()
            },
        );
        assert!(reg.effective("a", "b").is_some());
        assert!(reg.effective("b", "a").is_none());
    }

    #[test]
    fn host_death_applies_to_both_roles_and_takes_earliest() {
        let mut reg = FaultRegistry::default();
        reg.kill_host("b", SimTime(2_000));
        reg.kill_host("b", SimTime(1_000));
        let out = reg.effective("b", "c").expect("sender side dead");
        let inbound = reg.effective("a", "b").expect("receiver side dead");
        assert!(out.dead_at(SimTime(1_000)));
        assert!(!out.dead_at(SimTime(999)));
        assert!(inbound.dead_at(SimTime(1_500)));
    }

    #[test]
    fn jitter_is_deterministic_per_direction() {
        let mk = || {
            let mut reg = FaultRegistry::default();
            reg.fault_link(
                "a",
                "b",
                LinkFault {
                    jitter_max: SimDuration::from_micros(50),
                    seed: 7,
                    ..Default::default()
                },
            );
            reg.effective("a", "b").expect("active")
        };
        let (s1, s2) = (mk(), mk());
        for i in 0..64u64 {
            let t = SimTime(i * 1_000);
            assert_eq!(s1.perturb(t), s2.perturb(t), "packet {i} diverged");
        }
    }
}
