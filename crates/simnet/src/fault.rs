//! Fault injection for the modeled fabric.
//!
//! The paper's gateway was evaluated on a healthy cluster; its §4 future
//! work (flow control, robustness) is exactly about what happens when the
//! fabric is *not* healthy. This module lets a test perturb individual
//! link directions deterministically:
//!
//! * **jitter** — a seeded uniform delay added to each packet's delivery
//!   time, shaking the pipeline out of its lockstep schedule;
//! * **stalls** — with a configured probability a packet is additionally
//!   held for a fixed stall duration, modeling a transient link hiccup;
//! * **silent death** — from a configured instant, sends on the direction
//!   charge their normal send-side overhead and then vanish: the far end
//!   is never notified, exactly like a crashed peer whose NIC stopped
//!   acking. The mailbox stays open, so the receiver keeps waiting — only
//!   a deadline above (credit or drain timeout) can detect the loss.
//!
//! Every wired cable direction shares a [`FaultCell`] with the registry,
//! so faults are *live*: [`FaultRegistry::kill_host`] takes effect on
//! already-wired links, and [`FaultRegistry::revive_host`] /
//! [`FaultRegistry::heal_link`] undo a death or a link fault mid-run —
//! the churn soaks kill a gateway under traffic, let the watchdogs mark
//! it dead, then revive it and drive a rejoin through the membership
//! plane.

use mad_util::rng::Rng;
use mad_util::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use vtime::{SimDuration, SimTime};

/// Fault description for one direction of one link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkFault {
    /// Uniform random extra delivery delay in `[0, jitter_max]` per packet.
    pub jitter_max: SimDuration,
    /// Probability that a packet is stalled for [`LinkFault::stall`].
    pub stall_prob: f64,
    /// Extra delivery delay of a stalled packet.
    pub stall: SimDuration,
    /// From this instant on, sends silently vanish (overhead is still
    /// charged, the receiver is never notified). `None` = never dies.
    pub dead_after: Option<SimTime>,
    /// Base RNG seed; mixed with the host names so each direction draws
    /// an independent deterministic sequence.
    pub seed: u64,
}

impl LinkFault {
    /// True if this fault perturbs delivery times at all.
    fn perturbs(&self) -> bool {
        self.jitter_max > SimDuration::ZERO
            || (self.stall_prob > 0.0 && self.stall > SimDuration::ZERO)
    }
}

/// Sentinel for "this direction never dies" in [`FaultCell::dead_ns`].
const ALIVE: u64 = u64::MAX;

/// The per-direction state an [`crate::Endpoint`] shares with the
/// [`FaultRegistry`] once wired. The registry keeps updating it, so
/// faults registered (or healed) after wiring are visible to live
/// endpoints immediately.
#[derive(Debug)]
pub(crate) struct FaultCell {
    /// Effective silent-death instant (nanos); [`ALIVE`] = healthy.
    /// Merged from the link-level fault and both hosts' death records.
    dead_ns: AtomicU64,
    /// Fast-path gate: true while jitter/stall perturbation is configured.
    perturbs: AtomicBool,
    state: Mutex<CellState>,
}

#[derive(Debug)]
struct CellState {
    /// The link-level fault only (host deaths live in `dead_ns`).
    fault: LinkFault,
    rng: Rng,
}

impl FaultCell {
    fn new(seed: u64) -> Self {
        FaultCell {
            dead_ns: AtomicU64::new(ALIVE),
            perturbs: AtomicBool::new(false),
            state: Mutex::new(CellState {
                fault: LinkFault::default(),
                rng: Rng::new(seed),
            }),
        }
    }

    /// True once the direction has gone silently dead at `now`.
    pub(crate) fn dead_at(&self, now: SimTime) -> bool {
        now.0 >= self.dead_ns.load(Ordering::Acquire)
    }

    /// Perturb a packet's delivery time with jitter and stalls.
    pub(crate) fn perturb(&self, deliver_at: SimTime) -> SimTime {
        if !self.perturbs.load(Ordering::Acquire) {
            return deliver_at;
        }
        let mut st = self.state.lock();
        let mut at = deliver_at;
        if st.fault.jitter_max > SimDuration::ZERO {
            let extra = st.fault.jitter_max.as_nanos().saturating_add(1);
            let extra = st.rng.gen_range(0..extra);
            at = at.after(SimDuration::from_nanos(extra));
        }
        if st.fault.stall > SimDuration::ZERO {
            let p = st.fault.stall_prob;
            if st.rng.bool_with(p) {
                at = at.after(st.fault.stall);
            }
        }
        at
    }
}

/// FNV-1a over a byte string — stable, dependency-free name hashing for
/// per-direction seed derivation.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Registry of faults, shared live with every wired cable direction.
#[derive(Debug, Default)]
pub(crate) struct FaultRegistry {
    /// Directional faults keyed by (sender host, receiver host) name.
    links: HashMap<(String, String), LinkFault>,
    /// Hosts whose every direction dies at the recorded instant.
    dead_hosts: HashMap<String, SimTime>,
    /// Live per-direction cells handed to wired endpoints.
    cells: HashMap<(String, String), Arc<FaultCell>>,
}

impl FaultRegistry {
    /// Register a fault on the `from` → `to` direction (replaces any
    /// previously registered fault on that direction, reseeding its RNG).
    /// Takes effect on already-wired cables too.
    pub(crate) fn fault_link(&mut self, from: &str, to: &str, fault: LinkFault) {
        self.links.insert((from.to_string(), to.to_string()), fault);
        if let Some(cell) = self.cells.get(&(from.to_string(), to.to_string())) {
            let seed = fault.seed ^ fnv(from) ^ fnv(to).rotate_left(17);
            let mut st = cell.state.lock();
            st.fault = fault;
            st.rng = Rng::new(seed);
        }
        self.recompute(from, to);
    }

    /// Remove any link-level fault on the `from` → `to` direction. Host
    /// deaths registered via [`FaultRegistry::kill_host`] are unaffected.
    pub(crate) fn heal_link(&mut self, from: &str, to: &str) {
        self.links.remove(&(from.to_string(), to.to_string()));
        if let Some(cell) = self.cells.get(&(from.to_string(), to.to_string())) {
            cell.state.lock().fault = LinkFault::default();
        }
        self.recompute(from, to);
    }

    /// Mark every direction touching `host` dead from `after` on.
    pub(crate) fn kill_host(&mut self, host: &str, after: SimTime) {
        let entry = self.dead_hosts.entry(host.to_string()).or_insert(after);
        *entry = (*entry).min(after);
        self.recompute_host(host);
    }

    /// Erase `host`'s death record: every direction touching it is live
    /// again (unless the link itself carries a `dead_after` fault). The
    /// inverse of [`FaultRegistry::kill_host`]; a later kill re-arms it.
    pub(crate) fn revive_host(&mut self, host: &str) {
        self.dead_hosts.remove(host);
        self.recompute_host(host);
    }

    /// The live fault cell for the `from` → `to` direction, created on
    /// first use. Wiring captures this; the registry keeps it current.
    pub(crate) fn effective(&mut self, from: &str, to: &str) -> Arc<FaultCell> {
        let key = (from.to_string(), to.to_string());
        if !self.cells.contains_key(&key) {
            let fault = self.links.get(&key).copied().unwrap_or_default();
            let seed = fault.seed ^ fnv(from) ^ fnv(to).rotate_left(17);
            let cell = Arc::new(FaultCell::new(seed));
            cell.state.lock().fault = fault;
            self.cells.insert(key.clone(), cell);
            self.recompute(from, to);
        }
        self.cells[&key].clone()
    }

    /// Refresh the merged state of one direction's cell.
    fn recompute(&self, from: &str, to: &str) {
        let key = (from.to_string(), to.to_string());
        let Some(cell) = self.cells.get(&key) else {
            return;
        };
        let fault = self.links.get(&key).copied().unwrap_or_default();
        let host_death = [from, to]
            .iter()
            .filter_map(|h| self.dead_hosts.get(*h))
            .min()
            .copied();
        let dead = match (fault.dead_after, host_death) {
            (Some(a), Some(b)) => a.min(b).0,
            (Some(a), None) => a.0,
            (None, Some(b)) => b.0,
            (None, None) => ALIVE,
        };
        cell.dead_ns.store(dead, Ordering::Release);
        cell.perturbs.store(fault.perturbs(), Ordering::Release);
    }

    /// Refresh every direction touching `host`.
    fn recompute_host(&self, host: &str) {
        let keys: Vec<(String, String)> = self
            .cells
            .keys()
            .filter(|(f, t)| f == host || t == host)
            .cloned()
            .collect();
        for (f, t) in keys {
            self.recompute(&f, &t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_direction_is_alive_and_unperturbed() {
        let mut reg = FaultRegistry::default();
        let cell = reg.effective("a", "b");
        assert!(!cell.dead_at(SimTime(u64::MAX - 1)));
        assert_eq!(cell.perturb(SimTime(5)), SimTime(5));
    }

    #[test]
    fn directions_are_independent() {
        let mut reg = FaultRegistry::default();
        reg.fault_link(
            "a",
            "b",
            LinkFault {
                jitter_max: SimDuration::from_micros(10),
                ..Default::default()
            },
        );
        assert!(reg.effective("a", "b").perturbs.load(Ordering::Relaxed));
        assert!(!reg.effective("b", "a").perturbs.load(Ordering::Relaxed));
    }

    #[test]
    fn host_death_applies_to_both_roles_and_takes_earliest() {
        let mut reg = FaultRegistry::default();
        reg.kill_host("b", SimTime(2_000));
        reg.kill_host("b", SimTime(1_000));
        let out = reg.effective("b", "c");
        let inbound = reg.effective("a", "b");
        assert!(out.dead_at(SimTime(1_000)));
        assert!(!out.dead_at(SimTime(999)));
        assert!(inbound.dead_at(SimTime(1_500)));
    }

    #[test]
    fn kill_after_wiring_reaches_the_live_cell() {
        let mut reg = FaultRegistry::default();
        let cell = reg.effective("a", "b");
        assert!(!cell.dead_at(SimTime(5_000)));
        reg.kill_host("b", SimTime(3_000));
        assert!(cell.dead_at(SimTime(5_000)));
        assert!(!cell.dead_at(SimTime(2_999)));
    }

    #[test]
    fn revive_clears_host_death_but_not_link_death() {
        let mut reg = FaultRegistry::default();
        reg.fault_link(
            "a",
            "b",
            LinkFault {
                dead_after: Some(SimTime(9_000)),
                ..Default::default()
            },
        );
        let cell = reg.effective("a", "b");
        reg.kill_host("b", SimTime(1_000));
        assert!(cell.dead_at(SimTime(1_000)));
        reg.revive_host("b");
        assert!(!cell.dead_at(SimTime(8_999)), "host death cleared");
        assert!(cell.dead_at(SimTime(9_000)), "link-level death survives");
        reg.heal_link("a", "b");
        assert!(!cell.dead_at(SimTime(9_000)), "healed link is immortal");
    }

    #[test]
    fn jitter_is_deterministic_per_direction() {
        let mk = || {
            let mut reg = FaultRegistry::default();
            reg.fault_link(
                "a",
                "b",
                LinkFault {
                    jitter_max: SimDuration::from_micros(50),
                    seed: 7,
                    ..Default::default()
                },
            );
            reg.effective("a", "b")
        };
        let (s1, s2) = (mk(), mk());
        for i in 0..64u64 {
            let t = SimTime(i * 1_000);
            assert_eq!(s1.perturb(t), s2.perturb(t), "packet {i} diverged");
        }
    }
}
