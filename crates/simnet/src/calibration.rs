//! Reconstructed hardware constants for the paper's testbed.
//!
//! The source text of the paper is an OCR transcription with garbled
//! numerals, so exact figures are reconstructed from (a) the prose that did
//! survive ("theoretical maximum ... 66 MB/s", "slowed down by a factor of
//! two", software overhead of roughly 40 µs per buffer switch, the ≈16 KB
//! Myrinet/SCI crossover), (b) the hardware spec the paper states (33 MHz ×
//! 32-bit PCI = 132 MB/s raw), and (c) published Madeleine II performance on
//! BIP/Myrinet and SISCI/SCI from the same group and era. Every constant
//! below is therefore *calibrated*, not measured; EXPERIMENTS.md compares
//! the shapes, not the absolute values.
//!
//! Deliberate modeling choice: per-packet host overhead is a single fixed
//! cost (no separate small-message fast path), which reproduces the paper's
//! bandwidth-versus-packet-size behaviour exactly — the spread between the
//! 8 KB and 128 KB curves *is* the amortization of fixed per-packet costs —
//! at the expense of inflating sub-microsecond-regime latencies (the paper
//! explicitly declines to discuss latency, §3.2.1).

use vtime::SimDuration;

use crate::fluid::{Arbitration, XferClass};
use crate::net::NetParams;

/// 33 MHz × 32-bit PCI: 132 MB/s raw, ~90 % usable under full duplex,
/// CPU-initiated PIO nearly stalled while NIC DMA bursts own the bus.
///
/// The instantaneous PIO share (0.1) is calibrated so the *emergent*
/// behaviour matches §3.4.1's measurement: with the gateway's double
/// buffering, a 16 KB SCI send overlaps a 16 KB Myrinet receive for
/// ~290 µs and ends up taking ~540 µs instead of ~290 µs — the paper's
/// "slowed down by a factor of two" refers to that aggregate send
/// duration, which requires PIO to be almost fully starved while the DMA
/// burst is actually on the bus.
pub fn pci_2001() -> Arbitration {
    Arbitration {
        capacity_bps: 132.0e6,
        duplex_efficiency: 0.90,
        pio_slowdown_under_dma: 0.1,
    }
}

/// Myrinet LANai 4.3 with BIP: 1.28 Gb/s cable, DMA bus-mastering on both
/// send and receive, dynamic (user-space) buffers.
pub fn myrinet_bip() -> NetParams {
    NetParams {
        name: "myrinet/bip",
        link_bw_bps: 160.0e6,
        latency: SimDuration::from_micros(6),
        dev_out_bps: 70.0e6,
        dev_in_bps: 70.0e6,
        out_class: XferClass::Dma,
        in_class: XferClass::Dma,
        overhead_send: SimDuration::from_micros(60),
        overhead_recv: SimDuration::from_micros(10),
    }
}

/// Dolphin D310 SCI with SISCI: sends are CPU programmed I/O through the
/// write-combining buffer (128-byte PCI bursts), receives land as incoming
/// remote writes (device-initiated, DMA class on the receiving bus). Static
/// buffers (the mapped SCI segment).
pub fn sci_sisci() -> NetParams {
    NetParams {
        name: "sci/sisci",
        link_bw_bps: 150.0e6,
        latency: SimDuration::from_micros(3),
        dev_out_bps: 56.0e6,
        dev_in_bps: 56.0e6,
        out_class: XferClass::Pio,
        in_class: XferClass::Dma,
        overhead_send: SimDuration::from_micros(20),
        overhead_recv: SimDuration::from_micros(8),
    }
}

/// 100 Mb/s Fast Ethernet with TCP: the control/ack network of the paper's
/// testbed and the inter-cluster transport of PACX-style baselines.
pub fn fast_ethernet_tcp() -> NetParams {
    NetParams {
        name: "fast-ethernet/tcp",
        link_bw_bps: 12.5e6,
        latency: SimDuration::from_micros(60),
        dev_out_bps: 12.5e6,
        dev_in_bps: 12.5e6,
        out_class: XferClass::Dma,
        in_class: XferClass::Dma,
        overhead_send: SimDuration::from_micros(50),
        overhead_recv: SimDuration::from_micros(50),
    }
}

/// SBP ("Efficient kernel support for reliable communication", Russell &
/// Hatcher — the paper's §2.3 example of a network whose data "must be
/// written in special buffers before being sent"): a kernel-level reliable
/// protocol over gigabit-class hardware. Both directions stage through
/// kernel buffers, so ordinary sends *and* receives each pay a memcpy —
/// the worst cell of the zero-copy matrix.
pub fn sbp_kernel() -> NetParams {
    NetParams {
        name: "sbp",
        link_bw_bps: 100.0e6,
        latency: SimDuration::from_micros(15),
        dev_out_bps: 80.0e6,
        dev_in_bps: 80.0e6,
        out_class: XferClass::Dma,
        in_class: XferClass::Dma,
        overhead_send: SimDuration::from_micros(30),
        overhead_recv: SimDuration::from_micros(20),
    }
}

/// Host memcpy throughput of a 450 MHz Pentium II for uncached data; the
/// cost of each avoided copy in the zero-copy ablation.
pub const MEMCPY_BPS: f64 = 180.0e6;

/// Software overhead of one gateway pipeline buffer switch (§3.3.1: the gap
/// between the expected and observed pipeline period).
pub fn gateway_switch_overhead() -> SimDuration {
    SimDuration::from_micros(40)
}

/// The packet size at which Madeleine performs comparably over Myrinet and
/// SCI — the paper's suggested MTU (§3.2.2).
pub const CROSSOVER_PACKET: usize = 16 * 1024;
