//! Unit tests for the hardware model.

use std::sync::Arc;

use vtime::{Clock, SimDuration, SimTime};

use crate::*;

fn mbps(bytes: u64, secs: f64) -> f64 {
    bytes as f64 / secs / 1e6
}

#[test]
fn solo_dma_transfer_runs_at_device_ceiling() {
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(
        &clock,
        Arbitration {
            capacity_bps: 132.0e6,
            duplex_efficiency: 0.9,
            pio_slowdown_under_dma: 0.5,
        },
    ));
    let h = clock.spawn("t", move |a| {
        bus.transfer(a, XferClass::Dma, XferDir::In, 66_000_000, 66.0e6);
        a.now()
    });
    let t = h.join().unwrap();
    // 66 MB at 66 MB/s = 1 s.
    assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "took {t}");
}

#[test]
fn zero_byte_transfer_is_free() {
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(&clock, Arbitration::unconstrained()));
    let h = clock.spawn("t", move |a| {
        bus.transfer(a, XferClass::Pio, XferDir::Out, 0, 1.0);
        a.now()
    });
    assert_eq!(h.join().unwrap(), SimTime::ZERO);
}

#[test]
fn two_dma_flows_share_capacity_fairly() {
    // Two 60 MB/s-capable DMA flows, same direction, on a 100 MB/s bus:
    // each should get 50 MB/s.
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(
        &clock,
        Arbitration {
            capacity_bps: 100.0e6,
            duplex_efficiency: 1.0,
            pio_slowdown_under_dma: 0.5,
        },
    ));
    let setup = clock.freeze();
    let mk = |name: &str| {
        let bus = bus.clone();
        clock.spawn(name.to_string(), move |a| {
            bus.transfer(a, XferClass::Dma, XferDir::In, 50_000_000, 60.0e6);
            a.now()
        })
    };
    let h1 = mk("x1");
    let h2 = mk("x2");
    drop(setup);
    let t1 = h1.join().unwrap().as_secs_f64();
    let t2 = h2.join().unwrap().as_secs_f64();
    // 50 MB each at a 50 MB/s share = 1 s for both.
    assert!((t1 - 1.0).abs() < 1e-3, "t1 = {t1}");
    assert!((t2 - 1.0).abs() < 1e-3, "t2 = {t2}");
}

#[test]
fn water_fill_gives_leftover_to_faster_flow() {
    // Flow A capped at 20 MB/s, flow B capped at 100 MB/s, bus 100 MB/s:
    // A gets 20, B gets 80. A moves 20 MB (1 s), B moves 80 MB (1 s).
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(
        &clock,
        Arbitration {
            capacity_bps: 100.0e6,
            duplex_efficiency: 1.0,
            pio_slowdown_under_dma: 1.0,
        },
    ));
    let setup = clock.freeze();
    let slow = {
        let bus = bus.clone();
        clock.spawn("slow", move |a| {
            bus.transfer(a, XferClass::Dma, XferDir::In, 20_000_000, 20.0e6);
            a.now().as_secs_f64()
        })
    };
    let fast = {
        let bus = bus.clone();
        clock.spawn("fast", move |a| {
            bus.transfer(a, XferClass::Dma, XferDir::In, 80_000_000, 100.0e6);
            a.now().as_secs_f64()
        })
    };
    drop(setup);
    assert!((slow.join().unwrap() - 1.0).abs() < 1e-3);
    assert!((fast.join().unwrap() - 1.0).abs() < 1e-3);
}

#[test]
fn pio_is_starved_while_dma_active() {
    // The paper's §3.4.1 phenomenon: NIC DMA bursts own the bus, so a PIO
    // send that would run at 56 MB/s crawls at 5.6 MB/s while a concurrent
    // DMA receive is active (see `calibration::pci_2001` for why 0.1).
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(&clock, calibration::pci_2001()));
    let setup = clock.freeze();
    let dma = {
        let bus = bus.clone();
        clock.spawn("dma", move |a| {
            // Long DMA stream: 140 MB at 70 MB/s keeps the bus busy 2 s.
            bus.transfer(a, XferClass::Dma, XferDir::In, 140_000_000, 70.0e6);
            a.now().as_secs_f64()
        })
    };
    let pio = {
        let bus = bus.clone();
        clock.spawn("pio", move |a| {
            bus.transfer(a, XferClass::Pio, XferDir::Out, 5_600_000, 56.0e6);
            a.now().as_secs_f64()
        })
    };
    drop(setup);
    let pio_done = pio.join().unwrap();
    // 5.6 MB at the throttled 5.6 MB/s = 1.0 s (not 0.1 s).
    assert!(
        (pio_done - 1.0).abs() < 0.02,
        "PIO finished at {pio_done}, expected ~1.0s under DMA starvation"
    );
    dma.join().unwrap();
}

#[test]
fn pio_runs_full_speed_without_dma() {
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(&clock, calibration::pci_2001()));
    let h = clock.spawn("pio", move |a| {
        bus.transfer(a, XferClass::Pio, XferDir::Out, 56_000_000, 56.0e6);
        a.now().as_secs_f64()
    });
    let t = h.join().unwrap();
    assert!((t - 1.0).abs() < 1e-3, "took {t}s");
}

#[test]
fn duplex_derating_caps_opposed_flows() {
    // Two opposed 70 MB/s DMA flows on the 2001 PCI bus: capacity under
    // duplex is 132 * 0.9 = 118.8 MB/s, shared equally → 59.4 MB/s each.
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(&clock, calibration::pci_2001()));
    let setup = clock.freeze();
    let mk = |name: &str, dir: XferDir| {
        let bus = bus.clone();
        clock.spawn(name.to_string(), move |a| {
            bus.transfer(a, XferClass::Dma, dir, 59_400_000, 70.0e6);
            a.now().as_secs_f64()
        })
    };
    let h_in = mk("in", XferDir::In);
    let h_out = mk("out", XferDir::Out);
    drop(setup);
    assert!((h_in.join().unwrap() - 1.0).abs() < 0.01);
    assert!((h_out.join().unwrap() - 1.0).abs() < 0.01);
}

#[test]
fn rates_rebalance_when_flow_completes() {
    // B shares with A for A's lifetime, then speeds up to its ceiling.
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(
        &clock,
        Arbitration {
            capacity_bps: 100.0e6,
            duplex_efficiency: 1.0,
            pio_slowdown_under_dma: 1.0,
        },
    ));
    let setup = clock.freeze();
    let a_h = {
        let bus = bus.clone();
        clock.spawn("a", move |ac| {
            bus.transfer(ac, XferClass::Dma, XferDir::In, 25_000_000, 100.0e6);
            ac.now().as_secs_f64()
        })
    };
    let b_h = {
        let bus = bus.clone();
        clock.spawn("b", move |ac| {
            bus.transfer(ac, XferClass::Dma, XferDir::In, 75_000_000, 100.0e6);
            ac.now().as_secs_f64()
        })
    };
    drop(setup);
    // Phase 1: both at 50 MB/s until A finishes its 25 MB at t=0.5.
    // Phase 2: B alone at 100 MB/s for its remaining 50 MB → +0.5 s.
    assert!((a_h.join().unwrap() - 0.5).abs() < 1e-3);
    assert!((b_h.join().unwrap() - 1.0).abs() < 1e-3);
}

#[test]
fn link_serializes_and_adds_latency() {
    let link = Link::new(100.0e6, SimDuration::from_micros(5));
    // First packet: 1 MB at 100 MB/s = 10 ms occupancy + 5 us latency.
    let d1 = link.schedule(SimTime::ZERO, 1_000_000);
    assert_eq!(d1.as_nanos(), 10_000_000 + 5_000);
    // Second packet queued immediately after: starts at 10 ms.
    let d2 = link.schedule(SimTime::ZERO, 1_000_000);
    assert_eq!(d2.as_nanos(), 20_000_000 + 5_000);
    // A packet arriving after the wire is idle starts immediately.
    let d3 = link.schedule(SimTime(100_000_000), 1_000_000);
    assert_eq!(d3.as_nanos(), 110_000_000 + 5_000);
}

#[test]
fn endpoint_round_trip_carries_data_and_charges_time() {
    let clock = Clock::new();
    let net = SimNet::new(&clock);
    let arb = calibration::pci_2001();
    let h_a = net.host("a", arb);
    let h_b = net.host("b", arb);
    let (ep_a, ep_b) = net.wire(&h_a, &h_b, calibration::myrinet_bip());
    let setup = clock.freeze();
    let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    let expect = payload.clone();
    let sender = clock.spawn("sender", move |a| {
        assert!(ep_a.send(a, payload));
        a.now()
    });
    let receiver = clock.spawn("receiver", move |a| {
        let got = ep_b.recv(a).expect("payload");
        (got, a.now())
    });
    drop(setup);
    sender.join().unwrap();
    let (got, t_recv) = receiver.join().unwrap();
    assert_eq!(got, expect);
    // Must include at least overhead_send + pci + link + latency + recv side.
    let min_ns = 60_000 + (8192.0 / 70.0e6 * 1e9) as u64;
    assert!(t_recv.as_nanos() > min_ns, "recv at {t_recv}");
}

#[test]
fn host_death_is_live_and_revivable_mid_run() {
    let clock = Clock::new();
    let net = SimNet::new(&clock);
    let arb = Arbitration::unconstrained();
    let h_a = net.host("a", arb);
    let h_b = net.host("b", arb);
    let (ep_a, ep_b) = net.wire(&h_a, &h_b, calibration::fast_ethernet_tcp());
    // Killing *after* wiring must still reach the live cable.
    net.kill_host(&h_b, SimTime(1_000));
    let setup = clock.freeze();
    let net2 = net.clone();
    let h_b2 = h_b.clone();
    let sender = clock.spawn("sender", move |a| {
        a.sleep(SimDuration::from_nanos(2_000));
        assert!(!ep_a.send(a, vec![1u8; 8]), "send into a dead host");
        assert!(ep_a.peer_dead());
        net2.revive_host(&h_b2);
        assert!(!ep_a.peer_dead(), "revive clears the death record");
        assert!(ep_a.send(a, vec![2u8; 8]), "send after revival");
    });
    let receiver = clock.spawn("receiver", move |a| ep_b.recv(a).expect("revived frame"));
    drop(setup);
    sender.join().unwrap();
    assert_eq!(receiver.join().unwrap(), vec![2u8; 8]);
}

#[test]
fn endpoint_recv_none_after_peer_drop() {
    let clock = Clock::new();
    let net = SimNet::new(&clock);
    let arb = Arbitration::unconstrained();
    let h_a = net.host("a", arb);
    let h_b = net.host("b", arb);
    let (ep_a, ep_b) = net.wire(&h_a, &h_b, calibration::fast_ethernet_tcp());
    drop(ep_a);
    let h = clock.spawn("r", move |a| ep_b.recv(a).is_none());
    assert!(h.join().unwrap());
}

#[test]
fn sustained_stream_bandwidth_matches_model() {
    // Stream 64 packets of 64 KB over modeled Myrinet between two hosts.
    // Steady-state bandwidth should approach the slowest pipeline stage:
    // sender side = overhead_send + pci_out = 60us + 936us ≈ 996us/packet
    // → ~65.8 MB/s.
    let clock = Clock::new();
    let net = SimNet::new(&clock);
    let arb = calibration::pci_2001();
    let h_a = net.host("a", arb);
    let h_b = net.host("b", arb);
    let (ep_a, ep_b) = net.wire(&h_a, &h_b, calibration::myrinet_bip());
    let setup = clock.freeze();
    const N: usize = 64;
    const SZ: usize = 64 * 1024;
    let sender = clock.spawn("s", move |a| {
        for _ in 0..N {
            assert!(ep_a.send(a, vec![0u8; SZ]));
        }
    });
    let receiver = clock.spawn("r", move |a| {
        for _ in 0..N {
            ep_b.recv(a).unwrap();
        }
        a.now()
    });
    drop(setup);
    sender.join().unwrap();
    let t = receiver.join().unwrap().as_secs_f64();
    let bw = mbps((N * SZ) as u64, t);
    assert!(
        (55.0..70.0).contains(&bw),
        "expected ~60-66 MB/s sustained, got {bw:.1}"
    );
}

#[test]
fn trace_log_records_and_sums() {
    let log = TraceLog::new();
    assert!(log.is_empty());
    log.record("gw-recv", TraceKind::Recv, SimTime(0), SimTime(1_000));
    log.record("gw-recv", TraceKind::Recv, SimTime(2_000), SimTime(4_000));
    log.record("gw-send", TraceKind::Send, SimTime(0), SimTime(500));
    assert_eq!(log.len(), 3);
    let total = log.total_secs("gw-recv", TraceKind::Recv);
    assert!((total - 3e-6).abs() < 1e-12);
}

#[test]
fn starved_pio_waits_for_dma_exit() {
    // A PIO flow with a tiny ceiling on a bus saturated by DMA still makes
    // progress once the DMA flows drain (no livelock, no starvation hang).
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(
        &clock,
        Arbitration {
            capacity_bps: 50.0e6,
            duplex_efficiency: 1.0,
            pio_slowdown_under_dma: 0.5,
        },
    ));
    let setup = clock.freeze();
    let dma = {
        let bus = bus.clone();
        clock.spawn("dma", move |a| {
            bus.transfer(a, XferClass::Dma, XferDir::In, 50_000_000, 50.0e6);
        })
    };
    let pio = {
        let bus = bus.clone();
        clock.spawn("pio", move |a| {
            bus.transfer(a, XferClass::Pio, XferDir::In, 1_000_000, 10.0e6);
            a.now().as_secs_f64()
        })
    };
    drop(setup);
    dma.join().unwrap();
    let t = pio.join().unwrap();
    // DMA eats the whole bus for 1 s; PIO then needs 0.1 s.
    assert!((t - 1.1).abs() < 0.02, "pio finished at {t}");
}

#[test]
fn endpoint_small_message_latency_decomposes() {
    // A tiny packet's one-way time = o_send + (negligible pci) + link
    // latency + o_recv + (negligible pci). Verify against Myrinet numbers.
    let clock = Clock::new();
    let net = SimNet::new(&clock);
    let arb = calibration::pci_2001();
    let (h_a, h_b) = (net.host("a", arb), net.host("b", arb));
    let p = calibration::myrinet_bip();
    let (ep_a, ep_b) = net.wire(&h_a, &h_b, p);
    let setup = clock.freeze();
    let s = clock.spawn("s", move |a| {
        assert!(ep_a.send(a, vec![0u8; 16]));
    });
    let r = clock.spawn("r", move |a| {
        ep_b.recv(a).unwrap();
        a.now().as_nanos()
    });
    drop(setup);
    s.join().unwrap();
    let t = r.join().unwrap();
    let expected = p.overhead_send.as_nanos() + p.latency.as_nanos() + p.overhead_recv.as_nanos();
    // PCI time for 16 bytes is ~230ns on each side; allow 2us slack.
    assert!(
        t >= expected && t <= expected + 2_000,
        "latency {t}ns, expected ≈{expected}ns"
    );
}

#[test]
fn calibration_invariants() {
    let arb = calibration::pci_2001();
    assert!(arb.duplex_efficiency > 0.0 && arb.duplex_efficiency <= 1.0);
    assert!(arb.pio_slowdown_under_dma > 0.0 && arb.pio_slowdown_under_dma <= 1.0);
    for p in [
        calibration::myrinet_bip(),
        calibration::sci_sisci(),
        calibration::fast_ethernet_tcp(),
        calibration::sbp_kernel(),
    ] {
        // Device ceilings cannot exceed the raw bus (they share it).
        assert!(p.dev_in_bps <= arb.capacity_bps, "{}", p.name);
        assert!(p.dev_out_bps <= arb.capacity_bps, "{}", p.name);
        assert!(p.link_bw_bps > 0.0);
    }
    // The paper's technology ordering: SCI cheaper per packet than
    // Myrinet; Ethernet slowest.
    assert!(calibration::sci_sisci().overhead_send < calibration::myrinet_bip().overhead_send);
    assert!(calibration::fast_ethernet_tcp().link_bw_bps < calibration::sci_sisci().link_bw_bps);
    assert_eq!(calibration::CROSSOVER_PACKET, 16 * 1024);
}

#[test]
fn frames_deliver_in_order_per_wire() {
    let clock = Clock::new();
    let net = SimNet::new(&clock);
    let arb = Arbitration::unconstrained();
    let (h_a, h_b) = (net.host("a", arb), net.host("b", arb));
    let (ep_a, ep_b) = net.wire(&h_a, &h_b, calibration::sci_sisci());
    let setup = clock.freeze();
    let s = clock.spawn("s", move |a| {
        for i in 0..32u8 {
            assert!(ep_a.send(a, vec![i; 64]));
        }
    });
    let r = clock.spawn("r", move |a| {
        for i in 0..32u8 {
            assert_eq!(ep_b.recv(a).unwrap(), vec![i; 64], "frame {i}");
        }
    });
    drop(setup);
    s.join().unwrap();
    r.join().unwrap();
}
