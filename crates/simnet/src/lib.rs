//! # simnet — a virtual-time model of the paper's 2001 cluster hardware
//!
//! The Madeleine forwarding paper was evaluated on dual Pentium-II 450 nodes
//! with a 33 MHz / 32-bit PCI bus, Myrinet (LANai-4, BIP) and Dolphin SCI
//! (D310, SISCI). None of that hardware is available here, so this crate
//! models the parts of it that produced the paper's results:
//!
//! * [`FluidBus`] — a fluid-flow shared-bandwidth resource with *priority
//!   arbitration*: bus-master DMA transactions (NIC-initiated) outrank CPU
//!   programmed-I/O transactions, throttling concurrent PIO to a configurable
//!   fraction — the phenomenon behind the paper's Myrinet→SCI collapse
//!   (§3.4.1, Fig. 8). It also derates total capacity under full-duplex load
//!   (§3.3.1).
//! * [`Link`] — a serialized point-to-point wire with bandwidth + latency.
//! * [`Endpoint`] — one side of a modeled NIC-to-NIC connection: sending
//!   charges per-packet host overhead, a PCI transfer of the appropriate
//!   class, and link occupancy; receiving charges delivery wait, host
//!   overhead, and the inbound PCI transfer.
//! * [`calibration`] — the reconstructed constants for Myrinet/BIP,
//!   SCI/SISCI, Fast-Ethernet/TCP and the shared PCI bus.
//! * [`LinkFault`] — deterministic fault injection per link direction:
//!   seeded delivery jitter, probabilistic stalls, and silent peer death
//!   (sends vanish after a configured instant without notifying anyone),
//!   for exercising the flow-control and degradation paths above.
//!
//! Everything runs on [`vtime`]: real OS threads, deterministic virtual
//! timestamps, zero wall-clock sleeps.

#![warn(missing_docs)]

pub mod calibration;
mod fault;
mod fluid;
mod link;
mod net;
mod trace;

pub use fault::LinkFault;
pub use fluid::{Arbitration, FluidBus, XferClass, XferDir};
pub use link::Link;
pub use net::{Endpoint, Frame, Host, NetParams, SimNet};
pub use trace::{TraceEvent, TraceKind, TraceLog};

#[cfg(test)]
mod tests;
