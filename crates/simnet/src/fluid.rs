//! Fluid-flow shared-bandwidth resource with priority arbitration.
//!
//! Concurrent transfers share the bus as continuous flows: whenever the set
//! of active transfers changes, per-transfer rates are recomputed by
//! water-filling and every waiting transfer re-estimates its completion time
//! (a cancellable virtual-time sleep on a shared [`Signal`]). Between
//! membership changes progress is linear, so accounting is exact.
//!
//! The arbitration policy reproduces the two PCI phenomena the paper
//! measured on its gateway node:
//!
//! 1. **DMA priority over PIO** (§3.4.1): bus-master transactions initiated
//!    by a NIC (Myrinet receive DMA) outrank processor-initiated programmed
//!    I/O (SCI sends). While any DMA flow is active, each PIO flow's device
//!    ceiling is multiplied by [`Arbitration::pio_slowdown_under_dma`]
//!    (paper: "slowed down by a factor of two").
//! 2. **Full-duplex derating** (§3.3.1): with simultaneous inbound and
//!    outbound flows the usable capacity drops to
//!    [`Arbitration::duplex_efficiency`] × raw (paper: ~60 of 66 MB/s
//!    achieved, "conflicts appearing on the PCI bus when doing intensive
//!    full-duplex communications").

use mad_util::sync::Mutex;
use vtime::{Actor, Clock, Signal, SimTime};

/// Who initiates the bus transaction; decides arbitration priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XferClass {
    /// Bus-master DMA initiated by a device (e.g. Myrinet LANai engines).
    Dma,
    /// Programmed I/O issued by the CPU (e.g. SISCI writes into the mapped
    /// SCI segment, through the write-combining buffer).
    Pio,
}

/// Direction of the flow relative to host memory, for duplex accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XferDir {
    /// Device → memory (a receive).
    In,
    /// Memory → device (a send).
    Out,
}

/// Arbitration policy of a [`FluidBus`].
#[derive(Debug, Clone, Copy)]
pub struct Arbitration {
    /// Raw capacity in bytes per second (33 MHz × 32 bit = 132 MB/s).
    pub capacity_bps: f64,
    /// Fraction of capacity usable when flows run in both directions.
    pub duplex_efficiency: f64,
    /// Multiplier applied to each PIO flow's ceiling while any DMA flow is
    /// active.
    pub pio_slowdown_under_dma: f64,
}

impl Arbitration {
    /// An unconstrained bus (infinite capacity, no interference); useful in
    /// unit tests that want to isolate other effects.
    pub fn unconstrained() -> Self {
        Arbitration {
            capacity_bps: f64::MAX / 4.0,
            duplex_efficiency: 1.0,
            pio_slowdown_under_dma: 1.0,
        }
    }
}

#[derive(Debug)]
struct Xfer {
    class: XferClass,
    dir: XferDir,
    remaining: f64,
    /// Device-imposed ceiling, bytes/s.
    max_rate: f64,
    /// Currently assigned rate, bytes/s.
    rate: f64,
}

#[derive(Debug, Default)]
struct BusState {
    xfers: Vec<Option<Xfer>>,
    last_update_ns: u64,
}

impl BusState {
    /// Apply linear progress from `last_update_ns` to `now_ns` using the
    /// rates assigned at the last membership change.
    fn advance_to(&mut self, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.last_update_ns) as f64 / 1e9;
        if dt > 0.0 {
            for x in self.xfers.iter_mut().flatten() {
                x.remaining = (x.remaining - x.rate * dt).max(0.0);
            }
        }
        self.last_update_ns = now_ns;
    }

    /// Recompute every flow's rate by class-prioritized water-filling.
    fn recompute(&mut self, arb: &Arbitration) {
        let has_in = self
            .xfers
            .iter()
            .flatten()
            .any(|x| x.dir == XferDir::In && x.remaining > 0.0);
        let has_out = self
            .xfers
            .iter()
            .flatten()
            .any(|x| x.dir == XferDir::Out && x.remaining > 0.0);
        let cap = arb.capacity_bps
            * if has_in && has_out {
                arb.duplex_efficiency
            } else {
                1.0
            };
        let any_dma = self
            .xfers
            .iter()
            .flatten()
            .any(|x| x.class == XferClass::Dma && x.remaining > 0.0);

        let ids = |state: &BusState, class: XferClass| -> Vec<usize> {
            state
                .xfers
                .iter()
                .enumerate()
                .filter_map(|(i, x)| match x {
                    Some(x) if x.class == class && x.remaining > 0.0 => Some(i),
                    _ => None,
                })
                .collect()
        };
        let dma_ids = ids(self, XferClass::Dma);
        let pio_ids = ids(self, XferClass::Pio);

        // DMA flows fill first at their device ceilings.
        let used = self.water_fill(&dma_ids, cap, 1.0);
        // PIO flows get the leftovers, with their ceilings throttled while
        // any DMA is active.
        let pio_factor = if any_dma {
            arb.pio_slowdown_under_dma
        } else {
            1.0
        };
        self.water_fill(&pio_ids, (cap - used).max(0.0), pio_factor);
    }

    /// Assign rates to `ids` sharing `budget`, honoring per-flow ceilings
    /// scaled by `ceiling_factor`. Returns the bandwidth actually consumed.
    fn water_fill(&mut self, ids: &[usize], budget: f64, ceiling_factor: f64) -> f64 {
        let mut order: Vec<usize> = ids.to_vec();
        order.sort_by(|&a, &b| {
            let ca = self.xfers[a].as_ref().unwrap().max_rate;
            let cb = self.xfers[b].as_ref().unwrap().max_rate;
            ca.partial_cmp(&cb).unwrap()
        });
        let mut left = budget;
        let mut n = order.len();
        let mut used = 0.0;
        for id in order {
            let x = self.xfers[id].as_mut().unwrap();
            let share = if n > 0 { left / n as f64 } else { 0.0 };
            let r = (x.max_rate * ceiling_factor).min(share).max(0.0);
            x.rate = r;
            left -= r;
            used += r;
            n -= 1;
        }
        used
    }
}

/// A shared-bandwidth bus in virtual time. One instance per simulated host
/// models that host's PCI bus; every NIC on the host routes its transfers
/// through it.
pub struct FluidBus {
    clock: Clock,
    signal: Signal,
    state: Mutex<BusState>,
    arb: Arbitration,
}

impl std::fmt::Debug for FluidBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FluidBus").field("arb", &self.arb).finish()
    }
}

impl FluidBus {
    /// Create a bus on `clock` with the given arbitration policy.
    pub fn new(clock: &Clock, arb: Arbitration) -> Self {
        FluidBus {
            clock: clock.clone(),
            signal: clock.signal(),
            state: Mutex::new(BusState::default()),
            arb,
        }
    }

    /// The policy this bus arbitrates with.
    pub fn arbitration(&self) -> Arbitration {
        self.arb
    }

    /// Move `bytes` across the bus as a `class`/`dir` flow capped at
    /// `max_rate_bps`, blocking `actor` in virtual time until the flow
    /// completes under contention.
    pub fn transfer(
        &self,
        actor: &Actor,
        class: XferClass,
        dir: XferDir,
        bytes: u64,
        max_rate_bps: f64,
    ) {
        if bytes == 0 {
            return;
        }
        assert!(
            max_rate_bps > 0.0,
            "a transfer needs a positive device ceiling"
        );
        let id = {
            let mut st = self.state.lock();
            st.advance_to(self.clock.now().as_nanos());
            let xfer = Xfer {
                class,
                dir,
                remaining: bytes as f64,
                max_rate: max_rate_bps,
                rate: 0.0,
            };
            let id = match st.xfers.iter().position(Option::is_none) {
                Some(i) => {
                    st.xfers[i] = Some(xfer);
                    i
                }
                None => {
                    st.xfers.push(Some(xfer));
                    st.xfers.len() - 1
                }
            };
            st.recompute(&self.arb);
            id
        };
        // Membership changed: wake the other flows so they re-estimate.
        self.signal.bump();

        loop {
            let (eta, seen) = {
                let mut st = self.state.lock();
                let now_ns = self.clock.now().as_nanos();
                st.advance_to(now_ns);
                let x = st.xfers[id].as_ref().unwrap();
                // Completion threshold of half a byte absorbs float error.
                if x.remaining < 0.5 {
                    st.xfers[id] = None;
                    st.recompute(&self.arb);
                    drop(st);
                    self.signal.bump();
                    return;
                }
                let rate = x.rate;
                // Below one byte per second the ETA is astronomically far
                // out (and could overflow); treat the flow as starved and
                // wait for a membership change instead.
                let eta = if rate >= 1.0 {
                    let ns = (x.remaining / rate * 1e9).ceil() as u64;
                    Some(SimTime(now_ns.saturating_add(ns.max(1))))
                } else {
                    None // starved: wait for a membership change
                };
                (eta, self.signal.epoch())
            };
            match eta {
                Some(deadline) => {
                    let _ = actor.wait_signal_until(&self.signal, seen, deadline);
                }
                None => {
                    let _ = actor.wait_signal(&self.signal, seen);
                }
            }
        }
    }

    /// Snapshot of (class, dir, assigned rate) for every active flow, for
    /// tests and trace instrumentation.
    pub fn active_flows(&self) -> Vec<(XferClass, XferDir, f64)> {
        let st = self.state.lock();
        st.xfers
            .iter()
            .flatten()
            .map(|x| (x.class, x.dir, x.rate))
            .collect()
    }
}
