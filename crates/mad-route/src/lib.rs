//! mad-route: a routing plane for multi-path gateway fabrics.
//!
//! The paper's flagged open problem is the relay host itself: one gateway's
//! internal bus carries every inter-cluster byte, so bidirectional flows
//! keep only ~63–65 % of one-way bandwidth and chains inherit the worst
//! link. This crate attacks the bottleneck with *path count* instead of a
//! hotter box: a session declares several parallel gateways between
//! cluster pairs, and traffic is striped across them.
//!
//! The crate is deliberately policy-only — plain graph + cost-model code
//! over `u32` network/node ids, with no knowledge of channels, packets or
//! threads — so the transport layer (`madeleine`) owns all I/O and this
//! layer stays trivially unit-testable.
//!
//! Three pieces:
//!
//! * [`RoutePlan`] / [`RoutingTable`] — per-source multi-path first-hop
//!   tables computed from the session topology. `paths(dest)[0]` is
//!   **byte-for-byte the hop the legacy single-path BFS would pick** (same
//!   algorithm, same tie-breaks), so a one-path plan reproduces existing
//!   behavior exactly; the remaining entries are every other minimum-hop
//!   first edge, in deterministic `(net, node)` order.
//! * [`StripePolicy`] — how a stream uses the plan: `PerStream` (default)
//!   binds each message to one path chosen at `begin_packing`;
//!   `PerFragment` round-robins individual fragments over all live paths
//!   (reorder-safe: the wire layer sequences striped packets).
//! * [`Selector`] — the adaptive cost model. Live gateway snapshots
//!   (occupancy, stall and throughput *rates*, not lifetime counters) are
//!   folded into an EWMA per-gateway cost; `choose` picks the cheapest
//!   live path with an in-flight-stream penalty and deterministic
//!   round-robin tie-breaking, and a dead-set drives failover.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

/// One network's membership within a virtual channel (ids are the session's
/// `NetworkId`/`NodeId` raw values).
#[derive(Debug, Clone)]
pub struct NetworkDecl {
    /// Network id.
    pub net: u32,
    /// Ranks attached to it.
    pub members: Vec<u32>,
}

/// The first edge of one minimum-hop path toward a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathHop {
    /// Network to send on.
    pub net: u32,
    /// Node to send to: the destination itself, or a gateway.
    pub node: u32,
    /// True if `node` is the final destination (direct delivery).
    pub last: bool,
}

/// Per-source multi-path routing plan: for every reachable destination,
/// all first edges of minimum-hop paths.
///
/// Invariants: `paths(dest)` is non-empty for reachable destinations,
/// contains no duplicate `(net, node)` edges, every entry starts a path of
/// the same (minimum) length, and `paths(dest)[0]` equals the hop the
/// legacy breadth-first search (`madeleine::routing::compute_routes`)
/// returns — the anchor that keeps one-path plans byte-identical to the
/// pre-multipath library.
#[derive(Debug, Clone, Default)]
pub struct RoutePlan {
    paths: BTreeMap<u32, Vec<PathHop>>,
}

impl RoutePlan {
    /// All minimum-hop first edges toward `dest` (empty if unreachable).
    /// The first entry is the legacy single-path hop.
    pub fn paths(&self, dest: u32) -> &[PathHop] {
        self.paths.get(&dest).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The legacy (single-path) hop toward `dest`.
    pub fn primary(&self, dest: u32) -> Option<PathHop> {
        self.paths(dest).first().copied()
    }

    /// Number of parallel paths toward `dest`.
    pub fn width(&self, dest: u32) -> usize {
        self.paths(dest).len()
    }

    /// Maximum path count over all destinations (1 for a single-gateway
    /// topology; the session uses this to size striping).
    pub fn max_width(&self) -> usize {
        self.paths.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Reachable destinations, ascending.
    pub fn destinations(&self) -> impl Iterator<Item = u32> + '_ {
        self.paths.keys().copied()
    }
}

/// Routing plans for every node of the session.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    plans: BTreeMap<u32, RoutePlan>,
}

impl RoutingTable {
    /// The plan computed for `src` (empty plan if `src` is isolated).
    pub fn plan(&self, src: u32) -> &RoutePlan {
        static EMPTY: RoutePlan = RoutePlan {
            paths: BTreeMap::new(),
        };
        self.plans.get(&src).unwrap_or(&EMPTY)
    }

    /// Nodes with a computed plan, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.plans.keys().copied()
    }
}

struct Graph {
    nets_of: BTreeMap<u32, Vec<u32>>,
    members_of: BTreeMap<u32, Vec<u32>>,
}

impl Graph {
    fn build(networks: &[NetworkDecl]) -> Graph {
        let mut nets_of: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut members_of: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for nm in networks {
            let mut members = nm.members.clone();
            members.sort_unstable();
            members.dedup();
            for &n in &members {
                nets_of.entry(n).or_default().push(nm.net);
            }
            members_of.insert(nm.net, members);
        }
        for nets in nets_of.values_mut() {
            nets.sort_unstable();
            nets.dedup();
        }
        Graph {
            nets_of,
            members_of,
        }
    }

    /// BFS distances and legacy first hops from `src` — the *same*
    /// traversal order as the transport's single-path router: networks of
    /// a node ascending, members of a network ascending, queue FIFO.
    fn bfs(&self, src: u32) -> (BTreeMap<u32, u32>, BTreeMap<u32, PathHop>) {
        let mut dist: BTreeMap<u32, u32> = BTreeMap::new();
        let mut first_hop: BTreeMap<u32, PathHop> = BTreeMap::new();
        let mut queue = VecDeque::new();
        dist.insert(src, 0);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            let Some(nets) = self.nets_of.get(&u) else {
                continue;
            };
            for &net in nets {
                for &v in &self.members_of[&net] {
                    if v == u || dist.contains_key(&v) {
                        continue;
                    }
                    dist.insert(v, du + 1);
                    let hop = if u == src {
                        PathHop {
                            net,
                            node: v,
                            last: true,
                        }
                    } else {
                        let mut h = first_hop[&u];
                        h.last = false;
                        h
                    };
                    first_hop.insert(v, hop);
                    queue.push_back(v);
                }
            }
        }
        for (dest, hop) in first_hop.iter_mut() {
            hop.last = dist[dest] == 1;
        }
        (dist, first_hop)
    }
}

/// Compute `src`'s multi-path plan over the given networks.
///
/// For every reachable destination: the legacy BFS hop first, then every
/// other first edge that starts a path of the same minimum length —
/// for distance-1 destinations the other directly shared networks, for
/// farther ones every other adjacent gateway `g` with
/// `1 + dist(g, dest) == dist(src, dest)` (via the lowest network shared
/// with `src`), ordered by `(net, node)`.
pub fn compute_plan(networks: &[NetworkDecl], src: u32) -> RoutePlan {
    let g = Graph::build(networks);
    let (dist, legacy) = g.bfs(src);

    // Direct neighbors of src and the sorted (net, neighbor) edge list.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if let Some(nets) = g.nets_of.get(&src) {
        for &net in nets {
            for &v in &g.members_of[&net] {
                if v != src {
                    edges.push((net, v));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    // Distance maps from each distinct neighbor (gateway candidates).
    let mut neigh_dist: BTreeMap<u32, BTreeMap<u32, u32>> = BTreeMap::new();
    for &(_, v) in &edges {
        neigh_dist.entry(v).or_insert_with(|| g.bfs(v).0);
    }

    let mut plan = RoutePlan::default();
    for (&dest, &d) in &dist {
        if dest == src {
            continue;
        }
        let primary = legacy[&dest];
        let mut alts: Vec<PathHop> = Vec::new();
        if d == 1 {
            // Every directly shared network is a parallel path.
            for &(net, v) in &edges {
                if v == dest {
                    alts.push(PathHop {
                        net,
                        node: v,
                        last: true,
                    });
                }
            }
        } else {
            // Every adjacent node continuing a minimum-hop path, entered
            // via the lowest shared network (one path per gateway host:
            // parallel wires into the same relay share its internal bus,
            // which is the very bottleneck multipath works around).
            for (&v, dv) in &neigh_dist {
                if dv.get(&dest) == Some(&(d - 1)) {
                    let net = edges.iter().find(|&&(_, w)| w == v).map(|&(n, _)| n);
                    if let Some(net) = net {
                        alts.push(PathHop {
                            net,
                            node: v,
                            last: false,
                        });
                    }
                }
            }
            alts.sort_unstable_by_key(|h| (h.net, h.node));
        }
        let mut paths = vec![primary];
        paths.extend(alts.into_iter().filter(|&h| h != primary));
        plan.paths.insert(dest, paths);
    }
    plan
}

/// Compute the plans of every node appearing in the topology.
pub fn compute_table(networks: &[NetworkDecl]) -> RoutingTable {
    let mut nodes: BTreeSet<u32> = BTreeSet::new();
    for nm in networks {
        nodes.extend(nm.members.iter().copied());
    }
    RoutingTable {
        plans: nodes
            .into_iter()
            .map(|n| (n, compute_plan(networks, n)))
            .collect(),
    }
}

// ------------------------------------------------------------- striping

/// How a stream spreads over the plan's parallel paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StripePolicy {
    /// Each message is bound to one path chosen at `begin_packing`
    /// (adaptive per-stream load balancing; failover re-issues the stream
    /// on a surviving path).
    #[default]
    PerStream,
    /// Individual fragments round-robin over every live path; the wire
    /// layer sequences them so reassembly is reorder-safe. Highest
    /// aggregate bandwidth for one bulk stream.
    PerFragment,
}

// ------------------------------------------------------------ cost model

/// One gateway's load over the last observation window — *rates*, not
/// lifetime totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct GatewayLoad {
    /// Pipeline stalls per second (writer waited for a free buffer).
    pub stall_rate: f64,
    /// Payload bytes currently held in the forwarding pipeline.
    pub occupancy_bytes: f64,
    /// Forwarded payload bytes per second.
    pub bytes_per_sec: f64,
}

impl GatewayLoad {
    /// Scalar congestion cost; occupancy is normalized so that 256 KiB of
    /// queued payload costs as much as one stall per second.
    fn cost(&self) -> f64 {
        self.stall_rate + self.occupancy_bytes / (256.0 * 1024.0)
    }
}

/// EWMA smoothing factor for fed gateway costs.
const EWMA_ALPHA: f64 = 0.5;
/// Cost added per in-flight stream already bound to a gateway.
const INFLIGHT_PENALTY: f64 = 0.125;
/// Costs within this margin are ties, resolved round-robin.
const TIE_EPSILON: f64 = 1e-9;

#[derive(Default)]
struct SelectorState {
    cost: BTreeMap<u32, f64>,
    inflight: BTreeMap<u32, u32>,
    dead: BTreeSet<u32>,
    last_pick: BTreeMap<u32, u32>,
    rr: BTreeMap<u32, usize>,
    /// Highest membership epoch (incarnation) observed per node.
    epoch: BTreeMap<u32, u64>,
    switches: u64,
    failovers: u64,
    deaths: u64,
    readmissions: u64,
}

/// Counter snapshot of the selector's routing decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectorCounters {
    /// Times a destination's chosen path differed from the previous pick.
    pub switches: u64,
    /// Streams re-issued on a surviving path after a gateway died.
    pub failovers: u64,
    /// Gateways retired from the live set (first `mark_dead` per node).
    /// A death with zero failovers means every affected stream was caught
    /// at its header send, before any payload needed replaying.
    pub deaths: u64,
    /// Retired gateways returned to the live set (rejoin at a higher
    /// epoch, or an explicit [`Selector::readmit`]).
    pub readmissions: u64,
}

/// What [`Selector::observe_epoch`] concluded about an epoch observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochObservation {
    /// The epoch advanced and the node was dead: it is readmitted to the
    /// live set with a reset cost.
    Readmitted,
    /// The epoch advanced (new incarnation) for a node that was not
    /// retired.
    Advanced,
    /// Same epoch as already known — nothing to do.
    Unchanged,
    /// The epoch is *older* than the recorded incarnation: the packet or
    /// event carrying it is from a dead incarnation and must be dropped.
    Stale,
}

/// Adaptive, failure-aware path selection. Thread-safe; every decision is
/// deterministic given the sequence of `feed`/`mark_dead` calls.
#[derive(Default)]
pub struct Selector {
    state: Mutex<SelectorState>,
}

impl Selector {
    /// A fresh selector: all gateways cost 0, none dead.
    pub fn new() -> Selector {
        Selector::default()
    }

    /// Fold one observation window of `node`'s load into its EWMA cost.
    pub fn feed(&self, node: u32, load: GatewayLoad) {
        let mut st = self.lock();
        let prev = st.cost.get(&node).copied().unwrap_or(0.0);
        st.cost
            .insert(node, prev * (1.0 - EWMA_ALPHA) + load.cost() * EWMA_ALPHA);
    }

    /// Mark `node`'s host dead (failover trigger). Returns true the first
    /// time.
    pub fn mark_dead(&self, node: u32) -> bool {
        let mut st = self.lock();
        let first = st.dead.insert(node);
        if first {
            st.deaths += 1;
        }
        first
    }

    /// True if `node` has been marked dead.
    pub fn is_dead(&self, node: u32) -> bool {
        self.lock().dead.contains(&node)
    }

    /// Return a retired node to the live set (the inverse of
    /// [`Selector::mark_dead`]). Its EWMA cost is reset — the pre-death
    /// congestion history says nothing about the revived incarnation.
    /// Returns true if the node was actually dead.
    pub fn readmit(&self, node: u32) -> bool {
        let mut st = self.lock();
        let was_dead = st.dead.remove(&node);
        if was_dead {
            st.cost.insert(node, 0.0);
            st.readmissions += 1;
        }
        was_dead
    }

    /// Fold a membership epoch observation for `node` into the selector.
    /// A *higher* epoch than recorded is a new incarnation: it readmits a
    /// retired node (reset cost) and advances the recorded epoch. A
    /// *lower* epoch is stale — the caller must drop whatever carried it.
    pub fn observe_epoch(&self, node: u32, epoch: u64) -> EpochObservation {
        let mut st = self.lock();
        let known = st.epoch.get(&node).copied().unwrap_or(0);
        if epoch < known {
            return EpochObservation::Stale;
        }
        st.epoch.insert(node, epoch);
        if epoch == known {
            return EpochObservation::Unchanged;
        }
        if st.dead.remove(&node) {
            st.cost.insert(node, 0.0);
            st.readmissions += 1;
            EpochObservation::Readmitted
        } else {
            EpochObservation::Advanced
        }
    }

    /// The highest membership epoch observed for `node` (0 if never fed).
    pub fn epoch(&self, node: u32) -> u64 {
        self.lock().epoch.get(&node).copied().unwrap_or(0)
    }

    /// Count one stream re-issued on a surviving path.
    pub fn note_failover(&self) {
        self.lock().failovers += 1;
    }

    /// The live subset of `paths`, in plan order.
    pub fn live(&self, paths: &[PathHop]) -> Vec<PathHop> {
        let st = self.lock();
        paths
            .iter()
            .filter(|h| !st.dead.contains(&h.node))
            .copied()
            .collect::<Vec<_>>()
    }

    /// Pick a path for a new stream toward `dest`, skipping dead gateways
    /// and any in `exclude` (already-failed attempts of this stream).
    /// Cheapest EWMA cost plus an in-flight penalty wins; ties rotate
    /// round-robin per destination. Bumps the winner's in-flight count —
    /// pair with [`Selector::complete`].
    pub fn choose(&self, dest: u32, paths: &[PathHop], exclude: &[u32]) -> Option<PathHop> {
        let mut st = self.lock();
        let live: Vec<PathHop> = paths
            .iter()
            .filter(|h| !st.dead.contains(&h.node) && !exclude.contains(&h.node))
            .copied()
            .collect();
        if live.is_empty() {
            return None;
        }
        let score = |st: &SelectorState, h: &PathHop| {
            st.cost.get(&h.node).copied().unwrap_or(0.0)
                + INFLIGHT_PENALTY * st.inflight.get(&h.node).copied().unwrap_or(0) as f64
        };
        let best = live
            .iter()
            .map(|h| score(&st, h))
            .fold(f64::INFINITY, f64::min);
        let tied: Vec<PathHop> = live
            .iter()
            .filter(|h| score(&st, h) <= best + TIE_EPSILON)
            .copied()
            .collect();
        let cursor = st.rr.entry(dest).or_insert(0);
        let pick = tied[*cursor % tied.len()];
        *cursor = cursor.wrapping_add(1);
        *st.inflight.entry(pick.node).or_insert(0) += 1;
        if let Some(&prev) = st.last_pick.get(&dest) {
            if prev != pick.node {
                st.switches += 1;
            }
        }
        st.last_pick.insert(dest, pick.node);
        Some(pick)
    }

    /// A stream bound to `node` finished (or failed): release its
    /// in-flight slot.
    pub fn complete(&self, node: u32) {
        let mut st = self.lock();
        if let Some(c) = st.inflight.get_mut(&node) {
            *c = c.saturating_sub(1);
        }
    }

    /// Routing-decision counters (for the `route:` trace track).
    pub fn counters(&self) -> SelectorCounters {
        let st = self.lock();
        SelectorCounters {
            switches: st.switches,
            failovers: st.failovers,
            deaths: st.deaths,
            readmissions: st.readmissions,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SelectorState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(net: u32, members: &[u32]) -> NetworkDecl {
        NetworkDecl {
            net,
            members: members.to_vec(),
        }
    }

    #[test]
    fn single_network_gives_one_direct_path() {
        let plan = compute_plan(&[nm(0, &[0, 1, 2])], 0);
        assert_eq!(
            plan.paths(2),
            &[PathHop {
                net: 0,
                node: 2,
                last: true
            }]
        );
        assert_eq!(plan.width(1), 1);
        assert_eq!(plan.max_width(), 1);
    }

    #[test]
    fn parallel_networks_are_parallel_direct_paths() {
        // Two wires between the same pair: lowest net first (legacy
        // tie-break), both listed.
        let plan = compute_plan(&[nm(1, &[0, 1]), nm(0, &[0, 1])], 0);
        assert_eq!(
            plan.paths(1),
            &[
                PathHop {
                    net: 0,
                    node: 1,
                    last: true
                },
                PathHop {
                    net: 1,
                    node: 1,
                    last: true
                },
            ]
        );
    }

    #[test]
    fn parallel_gateways_fan_out() {
        // net0: {0,1,2,3}; net1: {1,2,3,4} — gateways 1,2,3 all bridge.
        let plan = compute_plan(&[nm(0, &[0, 1, 2, 3]), nm(1, &[1, 2, 3, 4])], 0);
        assert_eq!(
            plan.paths(4),
            &[
                PathHop {
                    net: 0,
                    node: 1,
                    last: false
                },
                PathHop {
                    net: 0,
                    node: 2,
                    last: false
                },
                PathHop {
                    net: 0,
                    node: 3,
                    last: false
                },
            ]
        );
        assert_eq!(plan.width(1), 1); // gateways themselves are direct
        assert_eq!(plan.max_width(), 3);
    }

    #[test]
    fn longer_detours_are_not_paths() {
        // 0 —net0— 1 —net1— 3, and 0 —net0— 2 —net2— 4 —net3— 3:
        // the 3-hop detour via 2 must not appear next to the 2-hop path.
        let nets = [
            nm(0, &[0, 1, 2]),
            nm(1, &[1, 3]),
            nm(2, &[2, 4]),
            nm(3, &[4, 3]),
        ];
        let plan = compute_plan(&nets, 0);
        assert_eq!(
            plan.paths(3),
            &[PathHop {
                net: 0,
                node: 1,
                last: false
            }]
        );
    }

    #[test]
    fn direct_beats_gateway_and_stays_single() {
        // Legacy `prefers_direct_over_gateway`: a directly shared net and
        // a 2-hop alternative — only the direct edge is minimum-hop.
        let nets = [nm(0, &[0, 1]), nm(1, &[0, 2]), nm(2, &[2, 1])];
        let plan = compute_plan(&nets, 0);
        assert_eq!(
            plan.paths(1),
            &[PathHop {
                net: 0,
                node: 1,
                last: true
            }]
        );
    }

    #[test]
    fn table_covers_every_node() {
        let nets = [nm(0, &[0, 1, 2]), nm(1, &[1, 2, 3])];
        let table = compute_table(&nets);
        assert_eq!(table.nodes().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(table.plan(3).width(0), 2); // via gateway 1 or 2
        assert_eq!(table.plan(0).primary(3).unwrap().node, 1);
    }

    #[test]
    fn selector_round_robins_equal_paths() {
        let sel = Selector::new();
        let paths = [
            PathHop {
                net: 0,
                node: 1,
                last: false,
            },
            PathHop {
                net: 0,
                node: 2,
                last: false,
            },
        ];
        let a = sel.choose(9, &paths, &[]).unwrap();
        sel.complete(a.node);
        let b = sel.choose(9, &paths, &[]).unwrap();
        sel.complete(b.node);
        assert_ne!(a.node, b.node, "equal-cost paths must alternate");
        assert_eq!(sel.counters().switches, 1);
    }

    #[test]
    fn selector_sheds_load_from_congested_gateway() {
        let sel = Selector::new();
        let paths = [
            PathHop {
                net: 0,
                node: 1,
                last: false,
            },
            PathHop {
                net: 0,
                node: 2,
                last: false,
            },
        ];
        sel.feed(
            1,
            GatewayLoad {
                stall_rate: 50.0,
                occupancy_bytes: 4.0 * 1024.0 * 1024.0,
                bytes_per_sec: 1e6,
            },
        );
        for _ in 0..4 {
            let h = sel.choose(9, &paths, &[]).unwrap();
            assert_eq!(h.node, 2, "congested gateway must shed load");
        }
    }

    #[test]
    fn selector_skips_dead_and_excluded() {
        let sel = Selector::new();
        let paths = [
            PathHop {
                net: 0,
                node: 1,
                last: false,
            },
            PathHop {
                net: 0,
                node: 2,
                last: false,
            },
        ];
        assert!(sel.mark_dead(1));
        assert!(!sel.mark_dead(1), "second mark is not news");
        assert_eq!(sel.choose(9, &paths, &[]).unwrap().node, 2);
        assert_eq!(sel.choose(9, &paths, &[2]), None);
        assert_eq!(sel.live(&paths).len(), 1);
    }

    #[test]
    fn readmit_revives_a_dead_path_and_resets_cost() {
        let sel = Selector::new();
        let paths = [
            PathHop {
                net: 0,
                node: 1,
                last: false,
            },
            PathHop {
                net: 0,
                node: 2,
                last: false,
            },
        ];
        sel.feed(
            1,
            GatewayLoad {
                stall_rate: 100.0,
                ..Default::default()
            },
        );
        assert!(sel.mark_dead(1));
        assert_eq!(sel.live(&paths).len(), 1);
        assert!(sel.readmit(1));
        assert!(!sel.readmit(1), "second readmit is not news");
        assert_eq!(sel.live(&paths).len(), 2);
        // Cost was reset: node 1 competes again instead of being shunned
        // for its pre-death congestion.
        let picks: Vec<u32> = (0..2)
            .map(|_| sel.choose(9, &paths, &[]).unwrap().node)
            .collect();
        assert!(picks.contains(&1), "readmitted path must win ties again");
        let c = sel.counters();
        assert_eq!((c.deaths, c.readmissions), (1, 1));
    }

    #[test]
    fn epoch_observations_readmit_and_reject_stale() {
        let sel = Selector::new();
        assert_eq!(sel.observe_epoch(3, 1), EpochObservation::Advanced);
        assert_eq!(sel.observe_epoch(3, 1), EpochObservation::Unchanged);
        assert!(sel.mark_dead(3));
        assert_eq!(sel.observe_epoch(3, 2), EpochObservation::Readmitted);
        assert!(!sel.is_dead(3));
        assert_eq!(sel.epoch(3), 2);
        // An echo from the dead incarnation must be flagged for dropping.
        assert_eq!(sel.observe_epoch(3, 1), EpochObservation::Stale);
        assert_eq!(sel.epoch(3), 2, "stale observation must not regress");
        assert_eq!(sel.counters().readmissions, 1);
    }

    #[test]
    fn inflight_penalty_balances_new_streams() {
        let sel = Selector::new();
        let paths = [
            PathHop {
                net: 0,
                node: 1,
                last: false,
            },
            PathHop {
                net: 0,
                node: 2,
                last: false,
            },
        ];
        // Without complete() calls, in-flight counts force alternation.
        let picks: Vec<u32> = (0..4)
            .map(|_| sel.choose(9, &paths, &[]).unwrap().node)
            .collect();
        assert_eq!(picks.iter().filter(|&&n| n == 1).count(), 2);
        assert_eq!(picks.iter().filter(|&&n| n == 2).count(), 2);
    }
}
