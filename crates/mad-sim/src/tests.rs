//! End-to-end tests of Madeleine over the simulated hardware — including
//! first checks that the paper's headline phenomena reproduce.

use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

use crate::{SimTech, Testbed};

/// One-way transfer of `total` bytes from rank 0 to rank 2 through the
/// gateway rank 1; returns achieved bandwidth in MB/s (virtual time).
fn forwarded_bandwidth(from_tech: SimTech, to_tech: SimTech, total: usize, mtu: usize) -> f64 {
    let tb = Testbed::new(3);
    let rt = tb.runtime();
    let mut sb = SessionBuilder::new(3).with_runtime(rt);
    let n_in = sb.network("net-in", tb.driver(from_tech), &[0, 1]);
    let n_out = sb.network("net-out", tb.driver(to_tech), &[1, 2]);
    let mut opts = VcOptions {
        mtu: Some(mtu),
        ..Default::default()
    };
    opts.gateway.switch_overhead_ns = simnet::calibration::gateway_switch_overhead().as_nanos();
    sb.vchannel("vc", &[n_in, n_out], opts);
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        match node.rank().0 {
            0 => {
                let data = vec![0xA5u8; total];
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                0.0
            }
            1 => 0.0,
            2 => {
                let mut buf = vec![0u8; total];
                let t0 = rt.now_nanos();
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                let t1 = rt.now_nanos();
                assert!(buf.iter().all(|&b| b == 0xA5));
                total as f64 / ((t1 - t0) as f64 / 1e9) / 1e6
            }
            _ => unreachable!(),
        }
    });
    results[2]
}

#[test]
fn direct_sim_myrinet_transfer_is_correct_and_timed() {
    let tb = Testbed::new(2);
    let rt = tb.runtime();
    let mut sb = SessionBuilder::new(2).with_runtime(rt);
    let net = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
    sb.channel("ch", net);
    let results = sb.run(|node| {
        let ch = node.channel("ch");
        let rt = node.runtime().clone();
        if node.rank() == NodeId(0) {
            let data: Vec<u8> = (0..262_144).map(|i| (i % 253) as u8).collect();
            let mut w = ch.begin_packing(NodeId(1)).unwrap();
            w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.end_packing().unwrap();
            0
        } else {
            let mut buf = vec![0u8; 262_144];
            let mut r = ch.begin_unpacking().unwrap();
            r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            r.end_unpacking().unwrap();
            assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 253) as u8));
            rt.now_nanos()
        }
    });
    // 256 KB over modeled Myrinet: 70 MB/s device ceiling means at least
    // ~3.7 ms of virtual time must have passed; a generous upper bound
    // catches gross model regressions.
    let elapsed_s = results[1] as f64 / 1e9;
    assert!(
        (0.003..0.1).contains(&elapsed_s),
        "virtual transfer time {elapsed_s}s out of plausible range"
    );
}

#[test]
fn sci_to_myrinet_forwarding_reaches_high_bandwidth() {
    // Fig. 6 regime: large messages, 32 KB packets → should approach the
    // PCI ceiling (paper: >50 MB/s for large packets, 66 theoretical max).
    let bw = forwarded_bandwidth(SimTech::Sci, SimTech::Myrinet, 4 << 20, 32 * 1024);
    assert!(
        (35.0..66.0).contains(&bw),
        "SCI→Myrinet bandwidth {bw:.1} MB/s outside the paper's regime"
    );
}

#[test]
fn myrinet_to_sci_forwarding_collapses() {
    // Fig. 7 regime: the gateway's SCI PIO sends are halved by concurrent
    // Myrinet DMA receives (paper: never exceeds ~35 MB/s).
    let bw = forwarded_bandwidth(SimTech::Myrinet, SimTech::Sci, 4 << 20, 32 * 1024);
    assert!(
        (15.0..35.0).contains(&bw),
        "Myrinet→SCI bandwidth {bw:.1} MB/s outside the paper's regime"
    );
}

#[test]
fn direction_asymmetry_matches_paper() {
    // The paper's central observation: SCI→Myrinet clearly beats
    // Myrinet→SCI at the same packet size.
    let s2m = forwarded_bandwidth(SimTech::Sci, SimTech::Myrinet, 2 << 20, 16 * 1024);
    let m2s = forwarded_bandwidth(SimTech::Myrinet, SimTech::Sci, 2 << 20, 16 * 1024);
    assert!(
        s2m > m2s * 1.3,
        "expected clear asymmetry, got SCI→Myri {s2m:.1} vs Myri→SCI {m2s:.1} MB/s"
    );
}

#[test]
fn bigger_packets_raise_sci_to_myrinet_bandwidth() {
    // Fig. 6's packet-size ordering: 8 KB packets amortize the per-switch
    // overhead worst. The message must be long enough (paper: up to 16 MB)
    // to wash out pipeline fill/drain at the largest packet size.
    let small = forwarded_bandwidth(SimTech::Sci, SimTech::Myrinet, 8 << 20, 8 * 1024);
    let large = forwarded_bandwidth(SimTech::Sci, SimTech::Myrinet, 8 << 20, 128 * 1024);
    assert!(
        large > small * 1.15,
        "expected packet-size scaling, got 8KB:{small:.1} vs 128KB:{large:.1} MB/s"
    );
}

#[test]
fn simulated_run_is_deterministic() {
    let a = forwarded_bandwidth(SimTech::Sci, SimTech::Myrinet, 1 << 20, 16 * 1024);
    let b = forwarded_bandwidth(SimTech::Sci, SimTech::Myrinet, 1 << 20, 16 * 1024);
    assert_eq!(a.to_bits(), b.to_bits(), "virtual timing must be exact");
}

#[test]
fn fast_ethernet_is_much_slower() {
    let eth = forwarded_bandwidth(SimTech::Sci, SimTech::FastEthernet, 1 << 20, 16 * 1024);
    assert!(
        eth < 12.5,
        "Fast Ethernet can't beat its 12.5 MB/s wire: got {eth:.1}"
    );
    assert!(eth > 2.0, "suspiciously slow Ethernet: {eth:.1} MB/s");
}

mod driver_units {
    use madeleine::conduit::{BufferMode, Driver};
    use madeleine::runtime::Runtime;
    use madeleine::types::NodeId;

    use crate::{SimTech, Testbed};

    #[test]
    fn tech_caps_are_consistent() {
        for tech in [
            SimTech::Myrinet,
            SimTech::Sci,
            SimTech::FastEthernet,
            SimTech::Sbp,
        ] {
            let caps = tech.caps();
            assert!(caps.max_gather >= 1);
            assert!(caps.preferred_mtu <= caps.max_packet);
            let p = tech.params();
            assert!(p.link_bw_bps > 0.0 && p.dev_in_bps > 0.0 && p.dev_out_bps > 0.0);
        }
        // Buffer disciplines per the paper's assignments.
        assert_eq!(SimTech::Myrinet.caps().mode, BufferMode::Dynamic);
        assert_eq!(SimTech::Sci.caps().mode, BufferMode::Static);
        assert_eq!(SimTech::Sbp.caps().mode, BufferMode::Static);
        // Staging: only socket/kernel-style networks copy on ordinary sends.
        assert!(!SimTech::Myrinet.send_staging_copy());
        assert!(!SimTech::Sci.send_staging_copy());
        assert!(SimTech::FastEthernet.send_staging_copy());
        assert!(SimTech::Sbp.send_staging_copy());
    }

    #[test]
    fn static_drivers_offer_buffers_dynamic_do_not() {
        let tb = Testbed::new(2);
        let rt = tb.runtime();
        for (tech, expect) in [(SimTech::Myrinet, false), (SimTech::Sci, true)] {
            let driver = tb.driver(tech);
            let (mut a, _b) = driver.connect(NodeId(0), NodeId(1), rt.event(), rt.event());
            assert_eq!(a.alloc_static(64).is_some(), expect, "{tech:?}");
        }
    }

    #[test]
    fn conduit_data_round_trip_on_clock() {
        let tb = Testbed::new(2);
        let rt = tb.runtime();
        let driver = tb.driver(SimTech::Sbp);
        let (mut a, mut b) = driver.connect(NodeId(0), NodeId(1), rt.event(), rt.event());
        let h = tb.clock().spawn("xfer", move |_| {
            a.send(&[b"he", b"llo"]).unwrap();
            let got = b.recv_owned().unwrap();
            assert_eq!(got, b"hello");
            // ready/closed bookkeeping
            assert!(!b.ready());
            assert!(!b.closed());
            drop(a);
            assert!(b.closed());
        });
        h.join().unwrap();
    }
}
