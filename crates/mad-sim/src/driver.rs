//! Simulated Transmission Modules over `simnet` endpoints.

use std::sync::Arc;

use madeleine::conduit::{BufferMode, Conduit, Driver, DriverCaps, StaticBuf};
use madeleine::error::{MadError, Result};
use madeleine::runtime::{RtEvent, Runtime};
use madeleine::types::NodeId;
use simnet::{calibration, Endpoint, Host, NetParams, SimNet, TraceKind};

use crate::runtime::{SimEvent, SimRuntime};

/// The network technologies of the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimTech {
    /// Myrinet LANai-4 with BIP: dynamic buffers, DMA both ways.
    Myrinet,
    /// Dolphin SCI with SISCI: static buffers (the mapped segment), PIO
    /// sends through the write-combining buffer.
    Sci,
    /// 100 Mb/s Fast Ethernet with TCP: static buffers (socket copies).
    FastEthernet,
    /// SBP-style kernel protocol (paper §2.3's static-buffer example):
    /// staging buffers on both sides, gigabit-class rates.
    Sbp,
}

impl SimTech {
    /// The calibrated timing parameters of this technology.
    pub fn params(self) -> NetParams {
        match self {
            SimTech::Myrinet => calibration::myrinet_bip(),
            SimTech::Sci => calibration::sci_sisci(),
            SimTech::FastEthernet => calibration::fast_ethernet_tcp(),
            SimTech::Sbp => calibration::sbp_kernel(),
        }
    }

    /// Whether ordinary sends pass through a host staging buffer that
    /// costs a memcpy. SISCI PIO writes move user data to the segment in a
    /// single pass (the PIO *is* the copy, and it is already charged as the
    /// bus transfer), and BIP DMAs straight from user memory; TCP sends
    /// copy into socket buffers.
    pub fn send_staging_copy(self) -> bool {
        matches!(self, SimTech::FastEthernet | SimTech::Sbp)
    }

    /// The Madeleine-facing capabilities of this technology's driver.
    pub fn caps(self) -> DriverCaps {
        match self {
            SimTech::Myrinet => DriverCaps {
                name: "sim-myrinet/bip",
                mode: BufferMode::Dynamic,
                max_gather: 32,
                max_packet: 512 * 1024,
                preferred_mtu: calibration::CROSSOVER_PACKET,
            },
            SimTech::Sci => DriverCaps {
                name: "sim-sci/sisci",
                mode: BufferMode::Static,
                max_gather: usize::MAX,
                max_packet: 512 * 1024,
                preferred_mtu: calibration::CROSSOVER_PACKET,
            },
            SimTech::FastEthernet => DriverCaps {
                name: "sim-tcp/fast-ethernet",
                mode: BufferMode::Static,
                max_gather: usize::MAX,
                max_packet: 512 * 1024,
                preferred_mtu: 32 * 1024,
            },
            SimTech::Sbp => DriverCaps {
                name: "sim-sbp",
                mode: BufferMode::Static,
                max_gather: usize::MAX,
                max_packet: 512 * 1024,
                preferred_mtu: 32 * 1024,
            },
        }
    }
}

/// A simulated Protocol Management Module: creates conduits whose timing
/// runs on the `simnet` hardware model.
pub struct SimDriver {
    tech: SimTech,
    params: NetParams,
    net: SimNet,
    hosts: Vec<Arc<Host>>,
    runtime: Arc<SimRuntime>,
}

impl SimDriver {
    /// A driver for `tech` whose conduits connect the given hosts
    /// (`hosts[rank]` is the machine of session rank `rank`).
    pub fn new(
        tech: SimTech,
        net: SimNet,
        hosts: Vec<Arc<Host>>,
        runtime: Arc<SimRuntime>,
    ) -> Arc<Self> {
        Self::with_params(tech, tech.params(), net, hosts, runtime)
    }

    /// Like [`SimDriver::new`] with overridden timing parameters — used by
    /// the ablation benchmarks (e.g. throttling the gateway's inbound rate
    /// for the paper's future-work flow-control probe).
    pub fn with_params(
        tech: SimTech,
        params: NetParams,
        net: SimNet,
        hosts: Vec<Arc<Host>>,
        runtime: Arc<SimRuntime>,
    ) -> Arc<Self> {
        Arc::new(SimDriver {
            tech,
            params,
            net,
            hosts,
            runtime,
        })
    }

    fn signal_of(&self, ev: &Arc<dyn RtEvent>) -> vtime::Signal {
        ev.as_any()
            .downcast_ref::<SimEvent>()
            .expect("simulated drivers require the SimRuntime (got a foreign event type)")
            .signal()
            .clone()
    }
}

impl Driver for SimDriver {
    fn caps(&self) -> DriverCaps {
        self.tech.caps()
    }

    fn connect(
        &self,
        a: NodeId,
        b: NodeId,
        ev_a: Arc<dyn RtEvent>,
        ev_b: Arc<dyn RtEvent>,
    ) -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let host_a = self
            .hosts
            .get(a.index())
            .unwrap_or_else(|| panic!("no simulated host for rank {a}"));
        let host_b = self
            .hosts
            .get(b.index())
            .unwrap_or_else(|| panic!("no simulated host for rank {b}"));
        let (ep_a, ep_b) = self.net.wire_with_signals(
            host_a,
            host_b,
            self.params,
            self.signal_of(&ev_a),
            self.signal_of(&ev_b),
        );
        let caps = self.tech.caps();
        (
            Box::new(SimConduit {
                caps,
                tech: self.tech,
                ep: ep_a,
                ev: ev_a,
                peer: b,
                runtime: self.runtime.clone(),
            }),
            Box::new(SimConduit {
                caps,
                tech: self.tech,
                ep: ep_b,
                ev: ev_b,
                peer: a,
                runtime: self.runtime.clone(),
            }),
        )
    }
}

struct SimConduit {
    caps: DriverCaps,
    tech: SimTech,
    ep: Endpoint,
    ev: Arc<dyn RtEvent>,
    peer: NodeId,
    runtime: Arc<SimRuntime>,
}

impl SimConduit {
    fn wire_send(&self, data: Vec<u8>) -> Result<()> {
        let start = self.runtime.clock().now();
        let ok = vtime::with_current(|actor| self.ep.send(actor, data));
        self.runtime
            .record_span(TraceKind::Send, start, self.runtime.clock().now());
        if ok {
            Ok(())
        } else if self.ep.peer_dead() {
            // An injected fault killed this direction: surface it as the
            // typed degradation error rather than an ordinary teardown.
            Err(MadError::PeerUnreachable(self.peer))
        } else {
            Err(MadError::Disconnected)
        }
    }

    fn wire_recv(&self) -> Result<Vec<u8>> {
        let start = self.runtime.clock().now();
        let got = vtime::with_current(|actor| self.ep.recv(actor));
        self.runtime
            .record_span(TraceKind::Recv, start, self.runtime.clock().now());
        got.ok_or(MadError::Disconnected)
    }
}

impl Conduit for SimConduit {
    fn caps(&self) -> DriverCaps {
        self.caps
    }

    fn send(&mut self, parts: &[&[u8]]) -> Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert!(
            total <= self.caps.max_packet,
            "packet of {total} bytes exceeds {} limit of {}",
            self.caps.name,
            self.caps.max_packet
        );
        assert!(
            parts.len() <= self.caps.max_gather,
            "{} gather limit exceeded",
            self.caps.name
        );
        if self.tech.send_staging_copy() {
            // Ordinary sends on this network stage the data into a driver
            // buffer first; that copy costs host time.
            self.runtime.charge_copy(total);
        }
        // Stage into a recycled buffer: the receiver adopts the landed
        // Vec back into the same session pool, closing the cycle.
        let mut packet = self.runtime.pool().get(total).detach();
        for p in parts {
            packet.extend_from_slice(p);
        }
        self.wire_send(packet)
    }

    fn send_static(&mut self, buf: StaticBuf) -> Result<()> {
        if self.caps.mode == BufferMode::Static {
            // The buffer *is* the driver's staging area: no copy to charge.
            buf.check_owner(self.caps.name)?;
            self.wire_send(buf.into_vec())
        } else {
            // A dynamic driver sends from anywhere, foreign buffers
            // included.
            self.wire_send(buf.into_vec())
        }
    }

    fn alloc_static(&mut self, len: usize) -> Option<StaticBuf> {
        match self.caps.mode {
            BufferMode::Static => Some(StaticBuf::from_pooled(
                self.caps.name,
                self.runtime.pool().take(len),
            )),
            BufferMode::Dynamic => None,
        }
    }

    fn recv_into(&mut self, dst: &mut [u8]) -> Result<usize> {
        let packet = self.wire_recv()?;
        if packet.len() > dst.len() {
            return Err(MadError::BufferTooSmall {
                have: dst.len(),
                need: packet.len(),
            });
        }
        dst[..packet.len()].copy_from_slice(&packet);
        if self.caps.mode == BufferMode::Static {
            // Data landed in the driver's segment; moving it to the
            // caller's memory is a real copy.
            self.runtime.charge_copy(packet.len());
        }
        let n = packet.len();
        // The wire buffer is spent: recycle it instead of freeing, so the
        // sender's next staging `get` is a pool hit.
        drop(self.runtime.pool().adopt(packet));
        Ok(n)
    }

    fn recv_owned(&mut self) -> Result<Vec<u8>> {
        // Surrendering the landed buffer is copy-free for both disciplines.
        self.wire_recv()
    }

    fn ready(&self) -> bool {
        self.ep.ready()
    }

    fn backlog(&self) -> bool {
        // A frame whose modeled arrival is still in the future is on the
        // wire, not awaiting service at this NIC.
        self.ep.deliverable()
    }

    fn closed(&self) -> bool {
        self.ep.closed()
    }

    fn recv_event(&self) -> Arc<dyn RtEvent> {
        self.ev.clone()
    }
}
