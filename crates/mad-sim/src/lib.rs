//! # mad-sim — Madeleine drivers over the simulated 2001 hardware
//!
//! Couples the hardware-agnostic `madeleine` library to the `simnet`
//! hardware model:
//!
//! * [`SimRuntime`] implements [`madeleine::runtime::Runtime`] on the
//!   virtual clock: spawned threads are clock actors, blocking events are
//!   clock signals, and the cost hooks (`charge_copy`, `charge_overhead`)
//!   become virtual-time sleeps calibrated to the paper's Pentium-II nodes.
//! * [`SimDriver`] implements [`madeleine::conduit::Driver`] over
//!   [`simnet::Endpoint`]s, with per-technology buffer disciplines:
//!   the Myrinet/BIP driver is *dynamic* (zero-copy DMA from/to user
//!   memory), the SCI/SISCI driver is *static* (data passes through the
//!   mapped segment; ordinary sends charge the staging copy, while
//!   `alloc_static` + `send_static` skip it — the paper's §2.3 zero-copy
//!   hook), and the Fast-Ethernet/TCP driver is static (socket copies).
//! * [`Testbed`] assembles the paper's evaluation platform: hosts with
//!   33 MHz/32-bit PCI buses, a Myrinet cluster, an SCI cluster, and a
//!   gateway carrying both NICs.

#![warn(missing_docs)]

mod driver;
mod runtime;
mod testbed;

pub use driver::{SimDriver, SimTech};
pub use runtime::{SimEvent, SimRuntime};
pub use simnet::LinkFault;
pub use testbed::Testbed;

#[cfg(test)]
mod tests;
