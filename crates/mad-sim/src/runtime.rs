//! The simulated [`Runtime`]: Madeleine's execution hooks on virtual time.

use std::sync::Arc;
use std::thread::JoinHandle;

use madeleine::runtime::{RtEvent, Runtime};
use simnet::{calibration, TraceKind, TraceLog};
use vtime::{Clock, Signal, SimDuration};

/// An [`RtEvent`] backed by a virtual-clock [`Signal`]. Waiting requires the
/// calling thread to be a clock actor (all threads spawned through
/// [`SimRuntime::spawn`] are).
pub struct SimEvent {
    signal: Signal,
}

impl SimEvent {
    /// The underlying clock signal — drivers hand it to simnet wires so
    /// frame arrivals wake Madeleine's multiplexed receivers directly.
    pub fn signal(&self) -> &Signal {
        &self.signal
    }
}

impl RtEvent for SimEvent {
    fn epoch(&self) -> u64 {
        self.signal.epoch()
    }

    fn bump(&self) {
        self.signal.bump();
    }

    fn wait_past(&self, seen: u64) -> u64 {
        vtime::with_current(|actor| actor.wait_signal(&self.signal, seen))
    }

    fn wait_past_timeout(&self, seen: u64, timeout_ns: u64) -> Option<u64> {
        vtime::with_current(|actor| {
            let deadline = actor.now().after(SimDuration::from_nanos(timeout_ns));
            match actor.wait_signal_until(&self.signal, seen, deadline) {
                vtime::WaitOutcome::Signaled(epoch) => Some(epoch),
                vtime::WaitOutcome::DeadlineReached => None,
            }
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The virtual clock as a trace clock: event timestamps are virtual
/// nanoseconds, marked with the `"sim"` domain in exports.
struct SimClock(Clock);

impl mad_trace::TraceClock for SimClock {
    fn now_ns(&self) -> u64 {
        self.0.now().as_nanos()
    }
}

/// Runtime implementation on the virtual clock, with the paper's host cost
/// model (memcpy bandwidth of a 450 MHz Pentium II).
pub struct SimRuntime {
    clock: Clock,
    memcpy_bps: f64,
    trace: Option<TraceLog>,
    pool: Arc<mad_util::pool::BufferPool>,
    spawned: std::sync::atomic::AtomicU64,
}

impl SimRuntime {
    /// A runtime on `clock` with the calibrated memcpy bandwidth.
    pub fn new(clock: &Clock) -> Arc<Self> {
        Arc::new(SimRuntime {
            clock: clock.clone(),
            memcpy_bps: calibration::MEMCPY_BPS,
            trace: None,
            pool: mad_util::pool::BufferPool::new(),
            spawned: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// A runtime that records spans (driver sends/receives, overheads) into
    /// `trace`, labeled with the recording thread's name — the raw material
    /// of the pipeline-timeline figures. The trace's tracer is bound to the
    /// virtual clock (domain `"sim"`) and handed to Madeleine through
    /// [`Runtime::tracer`], so library spans share the stream.
    pub fn with_trace(clock: &Clock, trace: TraceLog) -> Arc<Self> {
        trace
            .tracer()
            .init_clock(Arc::new(SimClock(clock.clone())), "sim");
        Arc::new(SimRuntime {
            clock: clock.clone(),
            memcpy_bps: calibration::MEMCPY_BPS,
            trace: Some(trace),
            pool: mad_util::pool::BufferPool::new(),
            spawned: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The attached trace log, if any.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Record a span labeled with the current thread's name.
    pub(crate) fn record_span(&self, kind: TraceKind, start: vtime::SimTime, end: vtime::SimTime) {
        if let Some(trace) = &self.trace {
            let label = std::thread::current()
                .name()
                .unwrap_or("<unnamed>")
                .to_string();
            trace.record(label, kind, start, end);
        }
    }

    /// Override the modeled memcpy bandwidth (ablations).
    pub fn with_memcpy_bps(clock: &Clock, memcpy_bps: f64) -> Arc<Self> {
        assert!(memcpy_bps > 0.0);
        Arc::new(SimRuntime {
            clock: clock.clone(),
            memcpy_bps,
            trace: None,
            pool: mad_util::pool::BufferPool::new(),
            spawned: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
}

impl Runtime for SimRuntime {
    fn spawn(&self, name: String, f: Box<dyn FnOnce() + Send>) -> JoinHandle<()> {
        self.spawned
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.clock.spawn(name, move |_actor| f())
    }

    fn event(&self) -> Arc<dyn RtEvent> {
        let creator = std::thread::current()
            .name()
            .unwrap_or("<unnamed>")
            .to_string();
        Arc::new(SimEvent {
            signal: self.clock.signal_named(format!("event-by-{creator}")),
        })
    }

    fn charge_copy(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let start = self.clock.now();
        let d = SimDuration::from_secs_f64(bytes as f64 / self.memcpy_bps);
        vtime::with_current(|actor| actor.sleep(d));
        self.record_span(TraceKind::Copy, start, self.clock.now());
    }

    fn charge_overhead(&self, nanos: u64) {
        if nanos == 0 {
            return;
        }
        let start = self.clock.now();
        vtime::with_current(|actor| actor.sleep(SimDuration::from_nanos(nanos)));
        self.record_span(TraceKind::Overhead, start, self.clock.now());
    }

    fn now_nanos(&self) -> u64 {
        self.clock.now().as_nanos()
    }

    fn setup_guard(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clock.freeze())
    }

    fn tracer(&self) -> mad_trace::Tracer {
        self.trace
            .as_ref()
            .map(|t| t.tracer().clone())
            .unwrap_or_default()
    }

    fn pool(&self) -> &Arc<mad_util::pool::BufferPool> {
        &self.pool
    }

    fn threads_spawned(&self) -> u64 {
        self.spawned.load(std::sync::atomic::Ordering::Relaxed)
    }
}
