//! The paper's evaluation platform as a reusable builder.
//!
//! §3 of the paper: two clusters of dual Pentium-II 450 nodes (33 MHz
//! 32-bit PCI), one on Myrinet/BIP, one on Dolphin SCI/SISCI, joined by a
//! gateway node carrying both NICs. [`Testbed`] builds the hosts and
//! drivers; callers compose them into a [`madeleine::SessionBuilder`].

use std::sync::Arc;

use simnet::{calibration, Arbitration, Host, LinkFault, SimNet};
use vtime::{Clock, SimTime};

use crate::driver::{SimDriver, SimTech};
use crate::runtime::SimRuntime;

/// A set of simulated machines on one virtual clock, ready to be wired
/// into Madeleine networks.
pub struct Testbed {
    clock: Clock,
    net: SimNet,
    runtime: Arc<SimRuntime>,
    hosts: Vec<Arc<Host>>,
}

impl Testbed {
    /// `n_nodes` hosts with the paper's PCI bus.
    pub fn new(n_nodes: usize) -> Self {
        Testbed::with_arbitration(n_nodes, calibration::pci_2001())
    }

    /// `n_nodes` hosts with a custom bus arbitration (ablations).
    pub fn with_arbitration(n_nodes: usize, arb: Arbitration) -> Self {
        let clock = Clock::new();
        let runtime = SimRuntime::new(&clock);
        Testbed::assemble(n_nodes, arb, clock, runtime)
    }

    /// `n_nodes` hosts with the paper's PCI bus and a span-recording
    /// runtime (for the pipeline-timeline figures).
    pub fn with_trace(n_nodes: usize, trace: simnet::TraceLog) -> Self {
        let clock = Clock::new();
        let runtime = SimRuntime::with_trace(&clock, trace);
        Testbed::assemble(n_nodes, calibration::pci_2001(), clock, runtime)
    }

    fn assemble(
        n_nodes: usize,
        arb: Arbitration,
        clock: Clock,
        runtime: std::sync::Arc<SimRuntime>,
    ) -> Self {
        let net = SimNet::new(&clock);
        let hosts = (0..n_nodes)
            .map(|i| net.host(format!("host{i}"), arb))
            .collect();
        Testbed {
            clock,
            net,
            runtime,
            hosts,
        }
    }

    /// The virtual clock driving this testbed.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The simulated runtime (hand to `SessionBuilder::with_runtime`).
    pub fn runtime(&self) -> Arc<SimRuntime> {
        self.runtime.clone()
    }

    /// The host of a given session rank.
    pub fn host(&self, rank: usize) -> &Arc<Host> {
        &self.hosts[rank]
    }

    /// All hosts, indexed by rank.
    pub fn hosts(&self) -> &[Arc<Host>] {
        &self.hosts
    }

    /// The simulated fabric (for building custom drivers).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Inject `fault` on both directions of the link between ranks `a`
    /// and `b`. Live: wired cables share their fault state with the
    /// fabric, so this works before *and* during a session run.
    pub fn fault_link(&self, a: usize, b: usize, fault: LinkFault) {
        self.net.fault_link(&self.hosts[a], &self.hosts[b], fault);
        self.net.fault_link(&self.hosts[b], &self.hosts[a], fault);
    }

    /// Inject `fault` on the `from` → `to` direction only.
    pub fn fault_link_dir(&self, from: usize, to: usize, fault: LinkFault) {
        self.net
            .fault_link(&self.hosts[from], &self.hosts[to], fault);
    }

    /// Remove any link-level fault between ranks `a` and `b`, both
    /// directions (host deaths from [`Testbed::kill_host`] are
    /// unaffected). Live, like [`Testbed::fault_link`].
    pub fn heal_link(&self, a: usize, b: usize) {
        self.net.heal_link(&self.hosts[a], &self.hosts[b]);
        self.net.heal_link(&self.hosts[b], &self.hosts[a]);
    }

    /// Silently kill the host of rank `rank` at virtual nanosecond
    /// `after_nanos`: from then on every packet it sends or should
    /// receive vanishes without notification — only deadlines (credit or
    /// drain timeouts) can detect the loss. Live: takes effect on a
    /// running session too, so churn soaks can kill hosts mid-run.
    pub fn kill_host(&self, rank: usize, after_nanos: u64) {
        self.net.kill_host(&self.hosts[rank], SimTime(after_nanos));
    }

    /// Erase rank `rank`'s death record: its links deliver again (unless
    /// a link-level `dead_after` fault remains). The inverse of
    /// [`Testbed::kill_host`]; pairs with a membership-plane rejoin to
    /// bring the node back into a running session.
    pub fn revive_host(&self, rank: usize) {
        self.net.revive_host(&self.hosts[rank]);
    }

    /// A driver of the given technology for this testbed's hosts.
    pub fn driver(&self, tech: SimTech) -> Arc<SimDriver> {
        SimDriver::new(
            tech,
            self.net.clone(),
            self.hosts.clone(),
            self.runtime.clone(),
        )
    }
}
