//! Quickstart: the Madeleine message-passing API in one file.
//!
//! Two nodes on one (shared-memory) network exchange a structured message
//! using the paper's incremental packing interface: an express header whose
//! content the receiver needs immediately, followed by a deferred bulk
//! payload that the library is free to aggregate.
//!
//! Run with: `cargo run --example quickstart`

use mad_shm::ShmDriver;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

fn main() {
    // 1. Declare the session: two nodes, one network, one channel.
    let mut session = SessionBuilder::new(2);
    let runtime = session.runtime().clone();
    let net = session.network("shm0", ShmDriver::new(runtime), &[0, 1]);
    session.channel("main", net);

    // 2. Run one closure per node. Rank 0 sends, rank 1 receives.
    let results = session.run(|node| {
        let channel = node.channel("main");
        if node.rank() == NodeId(0) {
            // Build a message incrementally (mad_begin_packing / mad_pack /
            // mad_end_packing). The header is packed with RecvMode::Express
            // because the receiver must read it *before* deciding how much
            // payload to unpack; the payload uses SendMode::Later +
            // RecvMode::Cheaper, the zero-copy aggregating fast path.
            let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
            let header = (payload.len() as u64).to_le_bytes();

            let mut msg = channel.begin_packing(NodeId(1)).unwrap();
            msg.pack(&header, SendMode::Safer, RecvMode::Express)
                .unwrap();
            msg.pack(&payload, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            msg.end_packing().unwrap();
            println!("[rank 0] sent {} payload bytes", payload.len());
            payload.len()
        } else {
            // The receiver mirrors the sender's unpack sequence exactly —
            // same order, same sizes, same flags (Madeleine messages are
            // not self-described).
            let mut msg = channel.begin_unpacking().unwrap();
            let mut header = [0u8; 8];
            msg.unpack(&mut header, SendMode::Safer, RecvMode::Express)
                .unwrap();
            let len = u64::from_le_bytes(header) as usize;

            let mut payload = vec![0u8; len];
            msg.unpack(&mut payload, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            let source = msg.source();
            msg.end_unpacking().unwrap();

            assert!(payload
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (i % 251) as u8));
            println!("[rank 1] received and verified {len} bytes from {source}");
            len
        }
    });

    assert_eq!(results, vec![100_000, 100_000]);
    println!("quickstart OK");
}
