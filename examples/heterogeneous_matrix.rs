//! A realistic workload: block-row matrix distribution across a cluster of
//! clusters (the kind of application the paper's introduction motivates).
//!
//! The master (rank 0, SCI cluster) owns an N×N matrix and farms row
//! blocks out to workers on *both* clusters over one virtual channel; each
//! worker computes its block's row sums and returns them. Workers on the
//! master's own cluster are reached directly, workers on the Myrinet
//! cluster transparently through the gateway — same application code.
//!
//! Per-message layout (same flags on both sides, per the Madeleine
//! contract):
//!   1. express header: [first_row u64, row_count u64]  — needed up front
//!   2. deferred bulk: the row block                     — aggregated
//!
//! Run with: `cargo run --release --example heterogeneous_matrix`

use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::vchannel::VcReader;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

const N: usize = 512; // matrix dimension (f64 entries)
const WORKERS: [u32; 3] = [1, 3, 4];

fn main() {
    let testbed = Testbed::new(5);
    let mut session = SessionBuilder::new(5).with_runtime(testbed.runtime());
    let sci = session.network("sci", testbed.driver(SimTech::Sci), &[0, 1, 2]);
    let myri = session.network("myrinet", testbed.driver(SimTech::Myrinet), &[2, 3, 4]);
    session.vchannel("vc", &[sci, myri], VcOptions::default());

    let results = session.run(|node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                // ---- master: distribute, then gather ----
                let matrix: Vec<f64> = (0..N * N).map(|i| (i % 97) as f64).collect();
                let rows_per_worker = N / WORKERS.len();
                for (w, &worker) in WORKERS.iter().enumerate() {
                    let first = w * rows_per_worker;
                    let count = if w == WORKERS.len() - 1 {
                        N - first
                    } else {
                        rows_per_worker
                    };
                    let header = encode_header(first, count);
                    let block = as_bytes(&matrix[first * N..(first + count) * N]);
                    let mut msg = vc.begin_packing(NodeId(worker)).unwrap();
                    msg.pack(&header, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    msg.pack(block, SendMode::Later, RecvMode::Cheaper).unwrap();
                    msg.end_packing().unwrap();
                }
                // Gather row sums (workers answer in any order).
                let mut row_sums = vec![0.0f64; N];
                for _ in 0..WORKERS.len() {
                    let mut r = vc.begin_unpacking().unwrap();
                    let mut header = [0u8; 16];
                    r.unpack(&mut header, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    let (first, count) = decode_header(&header);
                    let mut sums = vec![0u8; count * 8];
                    r.unpack(&mut sums, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    for (i, chunk) in sums.chunks_exact(8).enumerate() {
                        row_sums[first + i] = f64::from_le_bytes(chunk.try_into().unwrap());
                    }
                }
                // Verify against a local computation.
                for (i, &s) in row_sums.iter().enumerate() {
                    let expect: f64 = matrix[i * N..(i + 1) * N].iter().sum();
                    assert!((s - expect).abs() < 1e-9, "row {i} mismatch");
                }
                format!("master: {N}x{N} matrix distributed, row sums verified")
            }
            2 => "gateway".to_string(),
            rank if WORKERS.contains(&rank) => {
                // ---- worker: receive a block, reply with its row sums ----
                let mut r: VcReader = vc.begin_unpacking().unwrap();
                let forwarded = r.is_forwarded();
                let mut header = [0u8; 16];
                r.unpack(&mut header, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                let (first, count) = decode_header(&header);
                let mut block = vec![0u8; count * N * 8];
                r.unpack(&mut block, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();

                let rows = from_bytes(&block);
                let sums: Vec<u8> = rows
                    .chunks_exact(N)
                    .flat_map(|row| row.iter().sum::<f64>().to_le_bytes())
                    .collect();

                let mut msg = vc.begin_packing(NodeId(0)).unwrap();
                msg.pack(&header, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                msg.pack(&sums, SendMode::Later, RecvMode::Cheaper).unwrap();
                msg.end_packing().unwrap();
                format!(
                    "worker: rows {first}..{} ({} path)",
                    first + count,
                    if forwarded { "gateway" } else { "direct" }
                )
            }
            _ => unreachable!(),
        }
    });

    for (rank, line) in results.iter().enumerate() {
        println!("[rank {rank}] {line}");
    }
    println!("\n(total virtual time: {})", testbed.clock().now());
}

fn encode_header(first: usize, count: usize) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[..8].copy_from_slice(&(first as u64).to_le_bytes());
    h[8..].copy_from_slice(&(count as u64).to_le_bytes());
    h
}

fn decode_header(h: &[u8; 16]) -> (usize, usize) {
    (
        u64::from_le_bytes(h[..8].try_into().unwrap()) as usize,
        u64::from_le_bytes(h[8..].try_into().unwrap()) as usize,
    )
}

fn as_bytes(v: &[f64]) -> &[u8] {
    // f64 has no padding; reinterpreting as bytes is well-defined.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

fn from_bytes(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}
