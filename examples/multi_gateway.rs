//! Multi-gateway routing: three heterogeneous clusters in a chain.
//!
//! SCI cluster {0,1} — gateway 1 — Myrinet cluster {1,2,3} — gateway 3 —
//! Fast-Ethernet cluster {3,4}. A message from 0 to 4 crosses *two*
//! gateways; the paper's §2.2.2 explains why the last hop must arrive on
//! the regular channel (a second gateway could not otherwise distinguish
//! "forward me" from "deliver me").
//!
//! Run with: `cargo run --release --example multi_gateway`

use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

fn main() {
    let testbed = Testbed::new(5);
    let mut session = SessionBuilder::new(5).with_runtime(testbed.runtime());
    let sci = session.network("sci", testbed.driver(SimTech::Sci), &[0, 1]);
    let myri = session.network("myrinet", testbed.driver(SimTech::Myrinet), &[1, 2, 3]);
    let eth = session.network("ethernet", testbed.driver(SimTech::FastEthernet), &[3, 4]);
    session.vchannel(
        "vc",
        &[sci, myri, eth],
        VcOptions {
            mtu: Some(16 * 1024),
            ..Default::default()
        },
    );

    const N: usize = 256 * 1024;
    let results = session.run(|node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                // 0 can reach everyone; 4 is two gateways away.
                let dests = vc.destinations();
                assert_eq!(dests.len(), 4);
                let data = vec![0xEEu8; N];
                let mut w = vc.begin_packing(NodeId(4)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                // Wait for the echo that 4 sends back through both gateways.
                let mut r = vc.begin_unpacking().unwrap();
                assert_eq!(r.source(), NodeId(4));
                let mut echo = vec![0u8; N];
                r.unpack(&mut echo, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(echo.iter().all(|&b| b == 0xEE));
                "round trip 0→4→0 across two gateways verified".to_string()
            }
            1 => "gateway SCI↔Myrinet (library threads only)".to_string(),
            2 => "bystander on the Myrinet cluster".to_string(),
            3 => "gateway Myrinet↔Fast-Ethernet (library threads only)".to_string(),
            4 => {
                let mut r = vc.begin_unpacking().unwrap();
                assert!(r.is_forwarded());
                assert_eq!(r.source(), NodeId(0));
                let mut buf = vec![0u8; N];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                // Echo it back the way it came.
                let mut w = vc.begin_packing(NodeId(0)).unwrap();
                w.pack(&buf, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                format!(
                    "received {} KB from n0 via two gateways, echoed back",
                    N >> 10
                )
            }
            _ => unreachable!(),
        }
    });

    for (rank, line) in results.iter().enumerate() {
        println!("[rank {rank}] {line}");
    }
    println!("\n(total virtual time: {})", testbed.clock().now());
}
