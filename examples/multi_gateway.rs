//! Parallel gateways through the multi-path routing plane.
//!
//! Two clusters — Myrinet {0,1,2} and SCI {1,2,3} — are bridged by *two*
//! gateway hosts (ranks 1 and 2), so the `RoutePlan` for 0 → 3 has width
//! 2. Two virtual channels over the same wires demonstrate both striping
//! policies:
//!
//! * `streams` (per-stream, the default): each message binds to the
//!   cheapest path at its header and stays there; concurrent messages
//!   spread across both gateways.
//! * `striped` (per-fragment): a single bulk message round-robins its
//!   fragments over both paths inside sequence-numbered stripe envelopes
//!   and is reassembled byte-identically at the receiver.
//!
//! Either way the routing plane accounts every payload byte to the
//! gateway that carried it — the per-path splits printed at the end.
//!
//! Run with: `cargo run --release --example multi_gateway`

use mad_sim::{SimTech, Testbed};
use madeleine::mad_route::StripePolicy;
use madeleine::session::VcOptions;
use madeleine::{MultipathConfig, NodeId, RecvMode, SendMode, SessionBuilder};

const MSGS: u32 = 6;
const LEN: usize = 200 * 1024;
const BULK: usize = 1 << 20;

fn split_line(split: &[(u32, u64)]) -> String {
    split
        .iter()
        .map(|&(gw, b)| format!("gateway {gw}: {} KB", b >> 10))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let testbed = Testbed::new(4);
    let mut session = SessionBuilder::new(4).with_runtime(testbed.runtime());
    let myri = session.network("myrinet", testbed.driver(SimTech::Myrinet), &[0, 1, 2]);
    let sci = session.network("sci", testbed.driver(SimTech::Sci), &[1, 2, 3]);
    session.vchannel(
        "streams",
        &[myri, sci],
        VcOptions {
            mtu: Some(16 * 1024),
            multipath: Some(MultipathConfig::default()),
            ..Default::default()
        },
    );
    session.vchannel(
        "striped",
        &[myri, sci],
        VcOptions {
            mtu: Some(16 * 1024),
            multipath: Some(MultipathConfig {
                policy: StripePolicy::PerFragment,
                ..Default::default()
            }),
            ..Default::default()
        },
    );

    let results = session.run(|node| {
        let streams = node.vchannel("streams");
        let striped = node.vchannel("striped");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                // The plan for 0 → 3 goes through either gateway.
                let mp = streams.multipath().expect("multipath enabled");
                let width = mp.plan(NodeId(0)).width(3);
                assert_eq!(width, 2, "expected two parallel paths to rank 3");

                // A schedule of per-stream-routed messages...
                for i in 0..MSGS {
                    let data = vec![i as u8; LEN];
                    let hdr = [i as u8];
                    let mut w = streams.begin_packing(NodeId(3)).unwrap();
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                // ...then one bulk message striped fragment-by-fragment.
                let bulk: Vec<u8> = (0..BULK).map(|i| i as u8).collect();
                let mut w = striped.begin_packing(NodeId(3)).unwrap();
                w.pack(&bulk, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();

                let stream_split = mp.path_bytes();
                let stripe_split = striped.multipath().unwrap().path_bytes();
                format!(
                    "plan width {width}\n         per-stream split: {}\n         per-fragment split: {}",
                    split_line(&stream_split),
                    split_line(&stripe_split),
                )
            }
            3 => {
                let mut seen = 0u64;
                for _ in 0..MSGS {
                    let mut r = streams.begin_unpacking().unwrap();
                    let mut hdr = [0u8; 1];
                    r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    let mut buf = vec![0u8; LEN];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert!(buf.iter().all(|&b| b == hdr[0]), "stream corrupted");
                    seen += 1;
                }
                let mut bulk = vec![0u8; BULK];
                let mut r = striped.begin_unpacking().unwrap();
                r.unpack(&mut bulk, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(
                    bulk.iter().enumerate().all(|(i, &b)| b == i as u8),
                    "striped bulk message corrupted"
                );
                format!(
                    "received {seen} per-stream messages and a {} KB striped bulk intact",
                    BULK >> 10
                )
            }
            r => format!("gateway {r} Myrinet↔SCI (library threads only)"),
        }
    });

    for (rank, line) in results.iter().enumerate() {
        println!("[rank {rank}] {line}");
    }
    println!("\n(total virtual time: {})", testbed.clock().now());
}
