//! One command, three traced runs, a stack of Perfetto-ready files.
//!
//! Runs the paper's cluster-of-clusters scenario three times — on the
//! simulated testbed (virtual clock, `"sim"` domain), on the same testbed
//! under fault injection with a finite gateway credit window (`"fault"`),
//! and on the real shared-memory driver (monotonic clock, `"mono"`
//! domain) — and exports
//! each run's unified event trace as JSONL, as a Chrome `trace_event` file
//! (open in Perfetto or `chrome://tracing`), and as a per-channel counter
//! CSV. Both runs go through the same schema and the same exporters.
//!
//! Run with: `cargo run --release --example trace_dump [-- <prefix>]`
//! (default prefix `results/trace_dump`).

use mad_shm::ShmDriver;
use mad_sim::{LinkFault, SimTech, Testbed};
use madeleine::gateway::GatewayConfig;
use madeleine::mad_trace;
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};
use vtime::SimDuration;

const MSG: usize = 1 << 20;

/// The vchannel layout shared by both runs: two clusters of two nodes
/// joined by gateway rank 2.
fn vc_options() -> VcOptions {
    VcOptions {
        mtu: Some(32 * 1024),
        gateway: GatewayConfig::default(),
        ..Default::default()
    }
}

/// The application: rank 0 sends a bulk message across clusters to rank 4
/// and a short one to its neighbour; receivers check what arrived.
fn app(node: madeleine::Node) -> bool {
    let vc = node.vchannel("vc");
    node.barrier().wait();
    match node.rank().0 {
        0 => {
            let bulk = vec![0xCDu8; MSG];
            let mut w = vc.begin_packing(NodeId(4)).unwrap();
            w.pack(&bulk, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.end_packing().unwrap();
            let small = *b"hello, neighbour";
            let mut w = vc.begin_packing(NodeId(1)).unwrap();
            w.pack(&small, SendMode::Safer, RecvMode::Express).unwrap();
            w.end_packing().unwrap();
            true
        }
        1 => {
            let mut buf = [0u8; 16];
            let mut r = vc.begin_unpacking().unwrap();
            r.unpack(&mut buf, SendMode::Safer, RecvMode::Express)
                .unwrap();
            r.end_unpacking().unwrap();
            &buf == b"hello, neighbour"
        }
        4 => {
            let mut buf = vec![0u8; MSG];
            let mut r = vc.begin_unpacking().unwrap();
            r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            r.end_unpacking().unwrap();
            buf.iter().all(|&b| b == 0xCD)
        }
        _ => true,
    }
}

/// Cluster-of-clusters on the simulated SCI + Myrinet testbed.
fn run_sim() -> mad_trace::Snapshot {
    let trace = simnet::TraceLog::new();
    let testbed = Testbed::with_trace(5, trace.clone());
    let mut sb = SessionBuilder::new(5).with_runtime(testbed.runtime());
    let sci = sb.network("sci", testbed.driver(SimTech::Sci), &[0, 1, 2]);
    let myri = sb.network("myrinet", testbed.driver(SimTech::Myrinet), &[2, 3, 4]);
    sb.vchannel("vc", &[sci, myri], vc_options());
    let ok = sb.run(app);
    assert!(ok.into_iter().all(|b| b), "sim run failed");
    trace.tracer().snapshot()
}

/// The same simulated layout under fault injection: seeded delivery
/// jitter and occasional stalls on the bulk sender's first hop, plus a
/// finite credit window on the gateway. The run still completes correctly
/// (the faults only delay), and the exported trace carries the gateway's
/// credit and occupancy counters on its `gw:` tracks — the trace a
/// degraded-but-correct session leaves behind.
fn run_sim_faulted() -> mad_trace::Snapshot {
    let trace = simnet::TraceLog::new();
    let testbed = Testbed::with_trace(5, trace.clone());
    testbed.fault_link(
        0,
        2,
        LinkFault {
            jitter_max: SimDuration::from_micros(100),
            stall_prob: 0.02,
            stall: SimDuration::from_millis(1),
            seed: 20010914,
            ..Default::default()
        },
    );
    let mut sb = SessionBuilder::new(5).with_runtime(testbed.runtime());
    let sci = sb.network("sci", testbed.driver(SimTech::Sci), &[0, 1, 2]);
    let myri = sb.network("myrinet", testbed.driver(SimTech::Myrinet), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[sci, myri],
        VcOptions {
            mtu: Some(32 * 1024),
            gateway: GatewayConfig {
                credit_window: Some(8),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let ok = sb.run(app);
    assert!(ok.into_iter().all(|b| b), "faulted sim run failed");
    trace.tracer().snapshot()
}

/// The same layout on the real shared-memory driver.
fn run_shm() -> mad_trace::Snapshot {
    let tracer = mad_trace::Tracer::new();
    let mut sb = SessionBuilder::new(5).with_tracer(tracer.clone());
    let rt = sb.runtime().clone();
    let shm0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1, 2]);
    let shm1 = sb.network("shm1", ShmDriver::new(rt), &[2, 3, 4]);
    sb.vchannel("vc", &[shm0, shm1], vc_options());
    let ok = sb.run(app);
    assert!(ok.into_iter().all(|b| b), "shm run failed");
    tracer.snapshot()
}

fn export(snap: &mad_trace::Snapshot, prefix: &str, backend: &str) {
    let jsonl = format!("{prefix}.{backend}.jsonl");
    let chrome = format!("{prefix}.{backend}.trace.json");
    let csv = format!("{prefix}.{backend}.counters.csv");
    snap.save_jsonl(&jsonl).unwrap();
    snap.save_chrome(&chrome).unwrap();
    snap.save_counters_csv(&csv).unwrap();
    println!(
        "{backend}: {} events on {} tracks (clock domain \"{}\")",
        snap.event_count(),
        snap.threads.len(),
        snap.domain
    );
    println!("  {jsonl}\n  {chrome}\n  {csv}");
}

fn main() {
    let prefix = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/trace_dump".to_string());
    if let Some(dir) = std::path::Path::new(&prefix).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap();
        }
    }
    export(&run_sim(), &prefix, "sim");
    export(&run_sim_faulted(), &prefix, "fault");
    export(&run_shm(), &prefix, "shm");
    println!("\nopen the .trace.json files in Perfetto (https://ui.perfetto.dev).");
}
