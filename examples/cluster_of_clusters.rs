//! Cluster of clusters: the paper's testbed, end to end.
//!
//! Five simulated dual-PII nodes: ranks 0–1 form an SCI cluster, ranks 3–4
//! a Myrinet cluster, and rank 2 is the gateway carrying both NICs. A
//! virtual channel spans both networks; the application simply addresses
//! ranks — the library decides whether a message goes direct or through
//! the gateway's GTM/pipeline machinery, invisibly.
//!
//! Run with: `cargo run --release --example cluster_of_clusters`

use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

const MSG: usize = 4 << 20;

fn main() {
    let testbed = Testbed::new(5);
    let mut session = SessionBuilder::new(5).with_runtime(testbed.runtime());
    let sci = session.network("sci", testbed.driver(SimTech::Sci), &[0, 1, 2]);
    let myri = session.network("myrinet", testbed.driver(SimTech::Myrinet), &[2, 3, 4]);
    session.vchannel(
        "vc",
        &[sci, myri],
        VcOptions {
            mtu: Some(32 * 1024),
            ..Default::default()
        },
    );

    let results = session.run(|node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            // SCI-cluster node 0 sends a bulk message across clusters to
            // Myrinet node 4, and a small one inside its own cluster to 1.
            0 => {
                assert!(vc.is_forwarded(NodeId(4)).unwrap());
                assert!(!vc.is_forwarded(NodeId(1)).unwrap());

                let t0 = rt.now_nanos();
                let bulk = vec![0xCDu8; MSG];
                let mut w = vc.begin_packing(NodeId(4)).unwrap();
                w.pack(&bulk, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();

                let small = *b"hello, neighbour";
                let mut w = vc.begin_packing(NodeId(1)).unwrap();
                w.pack(&small, SendMode::Safer, RecvMode::Express).unwrap();
                w.end_packing().unwrap();
                format!("sent {} MB inter-cluster at t={}us", MSG >> 20, t0 / 1000)
            }
            // Intra-cluster receiver.
            1 => {
                let mut r = vc.begin_unpacking().unwrap();
                assert!(!r.is_forwarded());
                let mut buf = [0u8; 16];
                r.unpack(&mut buf, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.end_unpacking().unwrap();
                format!("direct message: {:?}", String::from_utf8_lossy(&buf))
            }
            // The gateway runs no application communication code at all —
            // forwarding is entirely the library's business.
            2 => "gateway: no application code involved".to_string(),
            3 => "idle cluster member".to_string(),
            // Inter-cluster receiver: measures the achieved bandwidth.
            4 => {
                let mut buf = vec![0u8; MSG];
                let t0 = rt.now_nanos();
                let mut r = vc.begin_unpacking().unwrap();
                assert!(r.is_forwarded());
                assert_eq!(r.source(), NodeId(0));
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                let dt = (rt.now_nanos() - t0) as f64 / 1e9;
                assert!(buf.iter().all(|&b| b == 0xCD));
                format!(
                    "received {} MB from n0 through the gateway: {:.1} MB/s (virtual)",
                    MSG >> 20,
                    MSG as f64 / dt / 1e6
                )
            }
            _ => unreachable!(),
        }
    });

    for (rank, line) in results.iter().enumerate() {
        println!("[rank {rank}] {line}");
    }
    println!(
        "\n(total virtual time: {}; the paper's SCI→Myrinet regime delivers\n\
         ~50 MB/s at this packet size against a 66 MB/s PCI ceiling)",
        testbed.clock().now()
    );
}
