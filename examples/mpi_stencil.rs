//! 1-D heat diffusion with halo exchange over the MPI-flavoured layer —
//! a classic SPMD kernel running on a simulated cluster of clusters.
//!
//! Each rank owns a slab of the rod; every iteration it exchanges one-cell
//! halos with its neighbours (crossing the gateway where the slabs live on
//! different clusters) and applies the explicit Euler update. The residual
//! is checked with an allreduce. The physics is verified against a serial
//! computation on rank 0.
//!
//! Run with: `cargo run --release --example mpi_stencil`

use std::sync::Arc;

use mad_mpi::typed::{bytes_to_f64s, f64s_to_bytes};
use mad_mpi::Communicator;
use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::SessionBuilder;

const CELLS_PER_RANK: usize = 1000;
const STEPS: usize = 200;
const ALPHA: f64 = 0.1;
const TAG_LEFT: u32 = 1;
const TAG_RIGHT: u32 = 2;

fn main() {
    // Two clusters of two workers each; rank 2 is the gateway and also a
    // worker (gateways are regular nodes too, paper §2.2.2).
    let testbed = Testbed::new(5);
    let mut session = SessionBuilder::new(5).with_runtime(testbed.runtime());
    let sci = session.network("sci", testbed.driver(SimTech::Sci), &[0, 1, 2]);
    let myri = session.network("myrinet", testbed.driver(SimTech::Myrinet), &[2, 3, 4]);
    session.vchannel("vc", &[sci, myri], VcOptions::default());

    let results = session.run(|node| {
        let comm = Communicator::new(Arc::clone(node.vchannel("vc")));
        let (rank, size) = (comm.rank(), comm.size());
        let n_total = CELLS_PER_RANK * size as usize;

        // Initial condition: a hot spike in the middle of the rod.
        let global_init: Vec<f64> = (0..n_total)
            .map(|i| if i == n_total / 2 { 1000.0 } else { 0.0 })
            .collect();
        let offset = rank as usize * CELLS_PER_RANK;
        let mut slab = global_init[offset..offset + CELLS_PER_RANK].to_vec();

        for _ in 0..STEPS {
            // Halo exchange with immediate neighbours (eager sends cannot
            // deadlock on the symmetric pattern).
            let mut left_halo = 0.0;
            let mut right_halo = 0.0;
            if rank > 0 {
                comm.send(rank - 1, TAG_LEFT, &slab[0].to_le_bytes())
                    .unwrap();
            }
            if rank + 1 < size {
                comm.send(rank + 1, TAG_RIGHT, &slab[CELLS_PER_RANK - 1].to_le_bytes())
                    .unwrap();
            }
            if rank + 1 < size {
                let (b, _) = comm.recv(Some(rank + 1), Some(TAG_LEFT)).unwrap();
                right_halo = f64::from_le_bytes(b.try_into().unwrap());
            }
            if rank > 0 {
                let (b, _) = comm.recv(Some(rank - 1), Some(TAG_RIGHT)).unwrap();
                left_halo = f64::from_le_bytes(b.try_into().unwrap());
            }
            // Explicit diffusion step with insulated rod ends.
            let mut next = slab.clone();
            for i in 0..CELLS_PER_RANK {
                let l = if i == 0 {
                    if rank == 0 {
                        slab[0]
                    } else {
                        left_halo
                    }
                } else {
                    slab[i - 1]
                };
                let r = if i == CELLS_PER_RANK - 1 {
                    if rank == size - 1 {
                        slab[i]
                    } else {
                        right_halo
                    }
                } else {
                    slab[i + 1]
                };
                next[i] = slab[i] + ALPHA * (l - 2.0 * slab[i] + r);
            }
            slab = next;
        }

        // Conservation check: total heat is invariant under the insulated
        // stencil; allreduce the slab sums.
        let mut total = vec![slab.iter().sum::<f64>()];
        comm.allreduce_f64(&mut total, |a, b| a + b).unwrap();
        assert!(
            (total[0] - 1000.0).abs() < 1e-6,
            "heat not conserved: {}",
            total[0]
        );

        // Gather the full field on rank 0 and verify against serial.
        let gathered = comm.gather(0, &f64s_to_bytes(&slab)).unwrap();
        if rank == 0 {
            let mut field = Vec::with_capacity(n_total);
            for part in gathered.unwrap() {
                field.extend(bytes_to_f64s(&part));
            }
            let serial = serial_reference(&global_init);
            let max_err = field
                .iter()
                .zip(&serial)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err < 1e-9, "max deviation from serial: {max_err}");
            format!(
                "verified {n_total} cells x {STEPS} steps against serial (max err {max_err:.1e}), \
                 peak T = {:.3}",
                field.iter().cloned().fold(0.0f64, f64::max)
            )
        } else {
            format!("rank {rank} done")
        }
    });

    for (rank, line) in results.iter().enumerate() {
        println!("[rank {rank}] {line}");
    }
    println!("\n(total virtual time: {})", testbed.clock().now());
}

fn serial_reference(init: &[f64]) -> Vec<f64> {
    let n = init.len();
    let mut cur = init.to_vec();
    for _ in 0..STEPS {
        let mut next = cur.clone();
        for i in 0..n {
            let l = if i == 0 { cur[0] } else { cur[i - 1] };
            let r = if i == n - 1 { cur[i] } else { cur[i + 1] };
            next[i] = cur[i] + ALPHA * (l - 2.0 * cur[i] + r);
        }
        cur = next;
    }
    cur
}
